package experiments

import (
	"fmt"
	"math"

	"antientropy/internal/sim"
)

// Fig8Config parameterizes Figure 8: COUNT with t concurrent instances
// combined by the §7.3 trimmed mean, under churn (8a) or message loss
// (8b).
type Fig8Config struct {
	// N is the network size (paper: 10⁵).
	N int
	// NewscastC is the overlay cache size.
	NewscastC int
	// Cycles per epoch (paper: 30).
	Cycles int
	// Instances is the sweep of concurrent instance counts t (paper:
	// 1…50).
	Instances []int
	// ChurnPerCycle substitutes this many nodes per cycle (Figure 8a:
	// 1000 at N = 10⁵).
	ChurnPerCycle int
	// MessageLoss drops this fraction of messages (Figure 8b: 0.2).
	MessageLoss float64
	// Reps per point (paper: 50).
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultFig8a returns Figure 8(a)'s parameters: churn of 1000 nodes per
// cycle, no message loss.
func DefaultFig8a() Fig8Config {
	return Fig8Config{
		N: 100000, NewscastC: 30, Cycles: 30,
		Instances:     []int{1, 2, 3, 5, 10, 20, 30, 40, 50},
		ChurnPerCycle: 1000,
		Reps:          50,
		Seed:          12,
	}
}

// DefaultFig8b returns Figure 8(b)'s parameters: 20% message loss, no
// churn.
func DefaultFig8b() Fig8Config {
	cfg := DefaultFig8a()
	cfg.ChurnPerCycle = 0
	cfg.MessageLoss = 0.2
	cfg.Seed = 13
	return cfg
}

// RunFig8 regenerates Figure 8: per instance count t, the minimum and
// maximum combined size estimate over all nodes (averaged across
// repetitions). The multi-instance combiner must tighten the envelopes
// dramatically as t grows.
func RunFig8(id, title string, cfg Fig8Config) (*Result, error) {
	if cfg.N < 10 || cfg.Cycles < 1 || len(cfg.Instances) == 0 || cfg.Reps < 1 ||
		cfg.MessageLoss < 0 || cfg.MessageLoss > 1 || cfg.ChurnPerCycle < 0 {
		return nil, fmt.Errorf("experiments: invalid fig8 config %+v", cfg)
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	topo := NewscastTopology(cfg.NewscastC)
	minSeries := Series{Label: "Min", Points: make([]Point, 0, len(cfg.Instances))}
	maxSeries := Series{Label: "Max", Points: make([]Point, 0, len(cfg.Instances))}
	for ti, t := range cfg.Instances {
		if t < 1 || t > cfg.N {
			return nil, fmt.Errorf("experiments: invalid instance count %d", t)
		}
		var failures []sim.FailureModel
		if cfg.ChurnPerCycle > 0 {
			failures = append(failures, sim.Churn{PerCycle: cfg.ChurnPerCycle})
		}
		seed := cfg.Seed ^ (uint64(ti+1) << 18)
		mins := make([]float64, cfg.Reps)
		maxs := make([]float64, cfg.Reps)
		err := sim.ParallelReps(cfg.Reps, seed, func(rep int, s uint64) error {
			// Each instance is led by a distinct random node, as if t
			// nodes had won the P_lead coin flip this epoch.
			leaders := leadersFor(cfg.N, t, s)
			e, err := eng.run(coreConfig{
				N:           cfg.N,
				Cycles:      cfg.Cycles,
				Seed:        s,
				Dim:         t,
				Leaders:     leaders,
				Topology:    topo,
				Failures:    failures,
				MessageLoss: cfg.MessageLoss,
			})
			if err != nil {
				return err
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			found := false
			e.ForEachParticipantVec(func(node int, _ []float64) {
				est := e.SizeEstimateAt(node)
				if math.IsInf(est, 0) {
					return
				}
				found = true
				if est < lo {
					lo = est
				}
				if est > hi {
					hi = est
				}
			})
			if !found {
				mins[rep], maxs[rep] = math.Inf(1), math.Inf(1)
				return nil
			}
			mins[rep], maxs[rep] = lo, hi
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s t=%d: %w", id, t, err)
		}
		minSeries.Points = append(minSeries.Points, summarize(float64(t), mins))
		maxSeries.Points = append(maxSeries.Points, summarize(float64(t), maxs))
	}
	return &Result{
		ID:     id,
		Title:  title,
		XLabel: "number of aggregation instances t",
		YLabel: "estimated size (min/max over nodes)",
		Engine: eng.name,
		Series: []Series{maxSeries, minSeries},
	}, nil
}

// RunFig8a regenerates Figure 8(a).
func RunFig8a(cfg Fig8Config) (*Result, error) {
	return RunFig8("fig8a", "Multi-instance COUNT under churn", cfg)
}

// RunFig8b regenerates Figure 8(b).
func RunFig8b(cfg Fig8Config) (*Result, error) {
	return RunFig8("fig8b", "Multi-instance COUNT under message loss", cfg)
}

// leadersFor picks t distinct leader nodes deterministically from seed.
func leadersFor(n, t int, seed uint64) []int {
	rng := leaderRNG(seed)
	leaders := make([]int, t)
	rng.Sample(leaders, n, nil)
	return leaders
}
