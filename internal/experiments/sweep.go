package experiments

import (
	"fmt"

	"antientropy/internal/core"
	"antientropy/internal/parsim"
	"antientropy/internal/scenario"
	"antientropy/internal/sim"
)

// Engine names accepted by EngineSel.Engine (and Options.Engine) — the
// scenario executor's spellings, shared so the two layers cannot drift.
// The one deliberate difference: the empty string means EngineAuto
// here (Options zero value auto-selects), but EngineSerial in
// scenario.SimOptions (whose zero value predates auto-selection).
const (
	// EngineAuto selects the engine by network size: sharded at
	// N >= parsim.AutoEngineThreshold, serial below.
	EngineAuto = scenario.EngineAuto
	// EngineSerial forces the serial engine of internal/sim.
	EngineSerial = scenario.EngineSerial
	// EngineSharded forces the sharded multi-core engine of
	// internal/parsim.
	EngineSharded = scenario.EngineSharded
)

// EngineSel selects the simulation engine of a sweep. Every figure,
// ablation and extension config embeds it, so Options.Engine and
// Options.Shards apply uniformly across the whole registry: the paper's
// entire evaluation runs on either engine.
type EngineSel struct {
	// Engine is "" or EngineAuto (pick by the sweep's largest network
	// size), EngineSerial, or EngineSharded. An explicit choice always
	// wins over auto-selection.
	Engine string
	// Shards is the shard count for the sharded engine (0 = GOMAXPROCS).
	// Sharded results are deterministic per (seed, shard count).
	Shards int
}

// resolve fixes the engine for a sweep whose largest single run has maxN
// node slots and which executes reps repetitions (concurrently via
// sim.ParallelReps). Auto-selection is resolved per sweep — one figure
// never mixes engines across its points.
func (s EngineSel) resolve(maxN, reps int) (sweepEngine, error) {
	name := s.Engine
	switch name {
	case "", EngineAuto:
		name = scenario.AutoEngine(maxN)
	case EngineSerial, EngineSharded:
	default:
		return sweepEngine{}, fmt.Errorf("experiments: unknown engine %q (want %q, %q or %q)",
			s.Engine, EngineAuto, EngineSerial, EngineSharded)
	}
	// sim.ParallelReps already spreads the repetitions across the cores,
	// so multi-rep sweeps pin the sharded engine to one worker: sharding
	// still changes the execution (and stays deterministic per shard
	// count), but engine-level goroutines on top of rep-level parallelism
	// would only oversubscribe the CPU. Single-rep runs get the machine.
	workers := 1
	if reps <= 1 {
		workers = 0
	}
	return sweepEngine{name: name, shards: s.Shards, workers: workers}, nil
}

// sweepEngine is a resolved engine choice: every repetition of a sweep
// dispatches through it, so one coreConfig drives either engine.
type sweepEngine struct {
	name    string
	shards  int
	workers int
}

func (se sweepEngine) sharded() bool { return se.name == EngineSharded }

// coreConfig is the engine-agnostic description of one simulation run:
// the subset of sim.Config the figure sweeps need, with the overlay
// expressed as a TopologySpec (which carries a builder per engine) and
// the hooks typed against sim.Core so the identical observer code runs
// on either engine.
type coreConfig struct {
	N      int
	Cycles int
	Seed   uint64

	// Fn/Init select scalar mode; Dim with Leaders or VecInit selects
	// vector mode — exactly as in sim.Config.
	Fn      core.Function
	Init    func(node int) float64
	Dim     int
	Leaders []int
	VecInit func(node, dim int) float64

	Topology TopologySpec
	Failures []sim.FailureModel

	LinkFailure float64
	MessageLoss float64

	Observe func(cycle int, e sim.Core)
}

func (se sweepEngine) simConfig(cc coreConfig) sim.Config {
	cfg := sim.Config{
		N: cc.N, Cycles: cc.Cycles, Seed: cc.Seed,
		Fn: cc.Fn, Init: cc.Init,
		Dim: cc.Dim, Leaders: cc.Leaders, VecInit: cc.VecInit,
		Overlay:     cc.Topology.Overlay,
		Failures:    cc.Failures,
		LinkFailure: cc.LinkFailure, MessageLoss: cc.MessageLoss,
	}
	if cc.Observe != nil {
		h := cc.Observe
		cfg.Observe = func(cycle int, e *sim.Engine) { h(cycle, e) }
	}
	return cfg
}

func (se sweepEngine) parsimConfig(cc coreConfig) parsim.Config {
	cfg := parsim.Config{
		N: cc.N, Cycles: cc.Cycles, Seed: cc.Seed,
		Shards: se.shards, Workers: se.workers,
		Fn: cc.Fn, Init: cc.Init,
		Dim: cc.Dim, Leaders: cc.Leaders, VecInit: cc.VecInit,
		Overlay:     cc.Topology.Sharded,
		Failures:    cc.Failures,
		LinkFailure: cc.LinkFailure, MessageLoss: cc.MessageLoss,
	}
	if cc.Observe != nil {
		h := cc.Observe
		cfg.Observe = func(cycle int, e *parsim.Engine) { h(cycle, e) }
	}
	return cfg
}

// run executes all configured cycles on the selected engine, invoking
// cc.Observe after initialization and after every cycle, and returns the
// finished engine.
func (se sweepEngine) run(cc coreConfig) (sim.Core, error) {
	if se.sharded() {
		return parsim.Run(se.parsimConfig(cc))
	}
	return sim.Run(se.simConfig(cc))
}

// start builds the engine without running it, for sweeps that drive
// cycles manually (early-exit loops like the MIN/MAX extension).
func (se sweepEngine) start(cc coreConfig) (sim.Core, error) {
	if se.sharded() {
		return parsim.New(se.parsimConfig(cc))
	}
	return sim.New(se.simConfig(cc))
}

// runner adapts the engine choice to the multi-epoch chain drivers
// (sim.RunEpochChain, sim.RunCountEpochChain): the serial engine uses
// the chain's own sim.Config verbatim, the sharded engine re-expresses
// it shard-side with topo's sharded overlay in place of the serial
// builder.
func (se sweepEngine) runner(topo TopologySpec) sim.RunnerFunc {
	if !se.sharded() {
		return sim.SerialRunner
	}
	return func(cfg sim.Config) (sim.Core, error) {
		// The serial-typed hooks cannot run on the sharded engine; fail
		// loudly rather than silently diverging from the serial runner.
		if cfg.BeforeCycle != nil || cfg.Observe != nil {
			return nil, fmt.Errorf("experiments: the sharded runner cannot honor serial-typed BeforeCycle/Observe hooks")
		}
		return parsim.Run(parsim.Config{
			N: cfg.N, InitialAlive: cfg.InitialAlive, Cycles: cfg.Cycles, Seed: cfg.Seed,
			Shards: se.shards, Workers: se.workers,
			Fn: cfg.Fn, Init: cfg.Init,
			Dim: cfg.Dim, Leaders: cfg.Leaders, VecInit: cfg.VecInit,
			Overlay:     topo.Sharded,
			Failures:    cfg.Failures,
			LinkFailure: cfg.LinkFailure, MessageLoss: cfg.MessageLoss,
		})
	}
}
