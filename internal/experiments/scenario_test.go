package experiments

import "testing"

func TestScenarioFigRegeneratesSeries(t *testing.T) {
	cfg := ScenarioFigConfig{Scenario: "partition-heal", N: 120, Reps: 2, Seed: 9}
	res, err := RunScenarioFig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "scenario-partition-heal" {
		t.Fatalf("result id %q", res.ID)
	}
	if len(res.Series) != 3 {
		t.Fatalf("got %d series, want rel error / stddev / live fraction", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 91 {
			t.Fatalf("series %q has %d points, want 91", s.Label, len(s.Points))
		}
	}
	final, err := res.SeriesByLabel("rel error")
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Points[len(final.Points)-1].Mean; got > 1e-9 {
		t.Fatalf("final rel error %g: partition-heal must re-converge", got)
	}
	if _, err := RunScenarioFig(ScenarioFigConfig{Scenario: "no-such", Reps: 1}); err == nil {
		t.Fatal("unknown scenario must be rejected")
	}
}
