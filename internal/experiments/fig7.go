package experiments

import (
	"fmt"
	"math"

	"antientropy/internal/sim"
	"antientropy/internal/stats"
	"antientropy/internal/theory"
)

// Fig7aConfig parameterizes Figure 7(a): the convergence factor of COUNT
// as a function of the link-failure probability P_d, against the §6.2
// theoretical upper bound ρ_d = e^(P_d − 1).
type Fig7aConfig struct {
	// N is the network size (paper: 10⁵).
	N int
	// NewscastC is the overlay cache size.
	NewscastC int
	// Cycles over which the factor is averaged.
	Cycles int
	// PdSteps grid points over [0, MaxPd].
	PdSteps int
	// MaxPd is the largest link failure probability swept (paper: ~0.9;
	// at 1.0 nothing ever converges).
	MaxPd float64
	// Reps per point (paper: 50).
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultFig7a returns the paper's parameters.
func DefaultFig7a() Fig7aConfig {
	return Fig7aConfig{
		N: 100000, NewscastC: 30, Cycles: 20,
		PdSteps: 10, MaxPd: 0.9, Reps: 50, Seed: 10,
	}
}

// RunFig7a regenerates Figure 7(a): measured factor per P_d plus the
// theoretical bound series. Link failure only slows convergence.
func RunFig7a(cfg Fig7aConfig) (*Result, error) {
	if cfg.N < 10 || cfg.Cycles < 1 || cfg.PdSteps < 2 || cfg.Reps < 1 ||
		cfg.MaxPd < 0 || cfg.MaxPd >= 1 {
		return nil, fmt.Errorf("experiments: invalid fig7a config %+v", cfg)
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	topo := NewscastTopology(cfg.NewscastC)
	measured := Series{Label: "Average Convergence Factor", Points: make([]Point, 0, cfg.PdSteps)}
	bound := Series{Label: "Theoretical Upper Bound", Points: make([]Point, 0, cfg.PdSteps)}
	for step := 0; step < cfg.PdSteps; step++ {
		pd := cfg.MaxPd * float64(step) / float64(cfg.PdSteps-1)
		seed := cfg.Seed ^ (uint64(step+1) << 18)
		vals, err := repValues(cfg.Reps, seed, func(_ int, s uint64) (float64, error) {
			// COUNT is an averaging instance over the peak distribution;
			// its convergence factor is measured on the underlying
			// estimates exactly like AVERAGE's.
			var tracker stats.ConvergenceTracker
			_, err := eng.run(coreConfig{
				N:           cfg.N,
				Cycles:      cfg.Cycles,
				Seed:        s,
				Dim:         1,
				Leaders:     []int{0},
				Topology:    topo,
				LinkFailure: pd,
				Observe: func(_ int, e sim.Core) {
					var m stats.Moments
					e.ForEachParticipantVec(func(_ int, vec []float64) {
						m.Add(vec[0])
					})
					tracker.Record(m.Variance())
				},
			})
			if err != nil {
				return 0, err
			}
			return tracker.AverageFactor(cfg.Cycles)
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7a pd=%g: %w", pd, err)
		}
		measured.Points = append(measured.Points, summarize(pd, vals))
		b := theory.LinkFailureBound(pd)
		bound.Points = append(bound.Points, Point{X: pd, Mean: b, Min: b, Max: b})
	}
	return &Result{
		ID:     "fig7a",
		Title:  "COUNT convergence factor vs link failure probability",
		XLabel: "Pd",
		YLabel: "convergence factor",
		Engine: eng.name,
		Series: []Series{measured, bound},
	}, nil
}

// Fig7bConfig parameterizes Figure 7(b): the spread of COUNT's size
// estimates as a function of the fraction of messages lost.
type Fig7bConfig struct {
	// N is the network size (paper: 10⁵).
	N int
	// NewscastC is the overlay cache size.
	NewscastC int
	// Cycles per epoch (paper: 30).
	Cycles int
	// LossSteps grid points over [0, MaxLoss].
	LossSteps int
	// MaxLoss is the largest loss fraction swept (paper: 0.5).
	MaxLoss float64
	// Reps per point (paper: 50).
	Reps int
	// Seed is the master seed.
	Seed uint64
	// EngineSel selects the simulation engine.
	EngineSel
}

// DefaultFig7b returns the paper's parameters.
func DefaultFig7b() Fig7bConfig {
	return Fig7bConfig{
		N: 100000, NewscastC: 30, Cycles: 30,
		LossSteps: 11, MaxLoss: 0.5, Reps: 50, Seed: 11,
	}
}

// RunFig7b regenerates Figure 7(b): per loss level, the minimum and the
// maximum size estimate over the network (two series, as in the paper).
// Small loss keeps estimates reasonable; heavy loss spreads them over
// orders of magnitude.
func RunFig7b(cfg Fig7bConfig) (*Result, error) {
	if cfg.N < 10 || cfg.Cycles < 1 || cfg.LossSteps < 2 || cfg.Reps < 1 ||
		cfg.MaxLoss < 0 || cfg.MaxLoss > 1 {
		return nil, fmt.Errorf("experiments: invalid fig7b config %+v", cfg)
	}
	eng, err := cfg.EngineSel.resolve(cfg.N, cfg.Reps)
	if err != nil {
		return nil, err
	}
	topo := NewscastTopology(cfg.NewscastC)
	minSeries := Series{Label: "Min values", Points: make([]Point, 0, cfg.LossSteps)}
	maxSeries := Series{Label: "Max values", Points: make([]Point, 0, cfg.LossSteps)}
	for step := 0; step < cfg.LossSteps; step++ {
		loss := cfg.MaxLoss * float64(step) / float64(cfg.LossSteps-1)
		seed := cfg.Seed ^ (uint64(step+1) << 18)
		mins := make([]float64, cfg.Reps)
		maxs := make([]float64, cfg.Reps)
		err := sim.ParallelReps(cfg.Reps, seed, func(rep int, s uint64) error {
			e, err := eng.run(coreConfig{
				N:           cfg.N,
				Cycles:      cfg.Cycles,
				Seed:        s,
				Dim:         1,
				Leaders:     []int{0},
				Topology:    topo,
				MessageLoss: loss,
			})
			if err != nil {
				return err
			}
			m := e.SizeMoments()
			if m.N() == 0 {
				mins[rep], maxs[rep] = math.Inf(1), math.Inf(1)
				return nil
			}
			mins[rep], maxs[rep] = m.Min(), m.Max()
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7b loss=%g: %w", loss, err)
		}
		minSeries.Points = append(minSeries.Points, summarize(loss, mins))
		maxSeries.Points = append(maxSeries.Points, summarize(loss, maxs))
	}
	return &Result{
		ID:     "fig7b",
		Title:  "COUNT size estimates vs fraction of messages lost",
		XLabel: "fraction of messages lost",
		YLabel: "estimated size",
		Engine: eng.name,
		Series: []Series{maxSeries, minSeries},
	}, nil
}
