package experiments

import (
	"testing"

	"antientropy/internal/theory"
)

func TestExtensionAdaptivity(t *testing.T) {
	res, err := RunExtensionAdaptivity(ExtensionConfig{N: 1000, Reps: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if len(pts) != 8 {
		t.Fatalf("%d epochs", len(pts))
	}
	// Every epoch's output must track that epoch's truth tightly — this
	// is the §4.1 adaptivity claim.
	for _, p := range pts {
		if p.Mean > 1e-4 {
			t.Errorf("epoch %g: relative error %g", p.X, p.Mean)
		}
	}
}

func TestExtensionMinMax(t *testing.T) {
	res, err := RunExtensionMinMax(ExtensionConfig{N: 10000, Reps: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	measured, err := res.SeriesByLabel("cycles to full MIN propagation")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.SeriesByLabel("Pittel push bound")
	if err != nil {
		t.Fatal(err)
	}
	// Logarithmic growth: going from n=100 to n=10000 (100×) should add
	// only a few cycles, and every point sits below the bound.
	first := measured.Points[0]
	last := measured.Points[len(measured.Points)-1]
	if last.Mean > 3*first.Mean {
		t.Errorf("propagation not logarithmic: %g cycles at n=%g vs %g at n=%g",
			first.Mean, first.X, last.Mean, last.X)
	}
	for i, p := range measured.Points {
		if p.Max > bound.Points[i].Mean {
			t.Errorf("n=%g: %g cycles exceeds Pittel bound %g", p.X, p.Max, bound.Points[i].Mean)
		}
	}
	if b := theory.EpidemicRoundsBound(1); b != 0 {
		t.Errorf("bound for n=1 should be 0, got %g", b)
	}
}

func TestExtensionConfigValidation(t *testing.T) {
	if _, err := RunExtensionAdaptivity(ExtensionConfig{}); err == nil {
		t.Error("empty adaptivity config accepted")
	}
	if _, err := RunExtensionMinMax(ExtensionConfig{}); err == nil {
		t.Error("empty minmax config accepted")
	}
	if _, err := RunExtensionCountChain(ExtensionConfig{}); err == nil {
		t.Error("empty countchain config accepted")
	}
}

func TestExtensionCountChain(t *testing.T) {
	res, err := RunExtensionCountChain(ExtensionConfig{N: 1500, Reps: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := res.SeriesByLabel("size estimate")
	if err != nil {
		t.Fatal(err)
	}
	leaders, err := res.SeriesByLabel("leaders elected")
	if err != nil {
		t.Fatal(err)
	}
	// From epoch 1 on, estimates must sit near the true size despite the
	// absurd initial guess.
	for _, p := range ests.Points[1:] {
		if p.Reps == 0 {
			continue // all reps leaderless at this epoch (very unlikely)
		}
		if p.Mean < 1400 || p.Mean > 1600 {
			t.Errorf("epoch %g: estimate %g, want ≈ 1500", p.X, p.Mean)
		}
	}
	// Epoch 0 elects (nearly) everyone — P_lead clamps to 1; later epochs
	// settle near C = 8.
	if leaders.Points[0].Mean < 1400 {
		t.Errorf("epoch 0 elected %g leaders, want ≈ N", leaders.Points[0].Mean)
	}
	last := leaders.Points[len(leaders.Points)-1]
	if last.Mean < 1 || last.Mean > 25 {
		t.Errorf("final epoch elected %g leaders, want ≈ 8", last.Mean)
	}
}
