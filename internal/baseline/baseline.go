// Package baseline implements the competing gossip-aggregation designs
// the DSN'04 paper positions itself against (§8):
//
//   - Push-sum (Kempe, Dobra & Gehrke, FOCS'03): push-only gossip over
//     (sum, weight) pairs. Mass conservation holds only while messages
//     are delivered — a lost message removes mass from the system.
//   - Naive push-only averaging: the initiator pushes its estimate and
//     only the receiver updates. The global sum is not conserved per
//     exchange (only in expectation), which is exactly why the paper's
//     push-pull scheme and Kempe's weighted variant exist.
//
// The ablation benchmark AblationPushPull contrasts all three under
// identical overlays and failure levels.
package baseline

import (
	"errors"
	"fmt"

	"antientropy/internal/sim"
	"antientropy/internal/stats"
)

// Config describes a baseline run. The overlay builder is shared with the
// main simulator so comparisons use identical topologies.
type Config struct {
	// N is the node count.
	N int
	// Rounds to execute.
	Rounds int
	// Seed drives all randomness.
	Seed uint64
	// SInit yields node i's initial sum component (its value, for
	// averaging).
	SInit func(node int) float64
	// WInit yields node i's initial weight (1 everywhere for AVERAGE; 1
	// at a single node and 0 elsewhere for COUNT).
	WInit func(node int) float64
	// Overlay builds the neighbor-sampling overlay.
	Overlay sim.OverlayBuilder
	// MessageLoss drops each pushed message with this probability. Lost
	// push-sum messages remove mass permanently.
	MessageLoss float64
	// Observe, when set, runs after initialization (round 0) and after
	// every round.
	Observe func(round int, ps *PushSum)
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("baseline: invalid node count %d", c.N)
	}
	if c.Rounds < 0 {
		return errors.New("baseline: negative round count")
	}
	if c.SInit == nil || c.WInit == nil {
		return errors.New("baseline: SInit and WInit are required")
	}
	if c.Overlay == nil {
		return errors.New("baseline: overlay builder is required")
	}
	if c.MessageLoss < 0 || c.MessageLoss > 1 {
		return fmt.Errorf("baseline: message loss %g not in [0,1]", c.MessageLoss)
	}
	return nil
}

// PushSum is the Kempe et al. protocol state: every node holds a (s, w)
// pair; each round it keeps half and pushes half to a uniformly random
// neighbor; the estimate is s/w.
type PushSum struct {
	cfg     Config
	rng     *stats.RNG
	overlay sim.Overlay
	s, w    []float64
	// nextS/nextW accumulate the halves delivered during the current
	// round (synchronous-round semantics, as in the FOCS'03 paper).
	nextS, nextW []float64
	round        int
}

// NewPushSum validates cfg and initializes the protocol.
func NewPushSum(cfg Config) (*PushSum, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	overlay, err := cfg.Overlay(sim.OverlayContext{
		N:     cfg.N,
		RNG:   rng.Split(),
		Alive: func(int) bool { return true },
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: building overlay: %w", err)
	}
	ps := &PushSum{
		cfg:     cfg,
		rng:     rng,
		overlay: overlay,
		s:       make([]float64, cfg.N),
		w:       make([]float64, cfg.N),
		nextS:   make([]float64, cfg.N),
		nextW:   make([]float64, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		ps.s[i] = cfg.SInit(i)
		ps.w[i] = cfg.WInit(i)
	}
	return ps, nil
}

// RunPushSum executes all configured rounds.
func RunPushSum(cfg Config) (*PushSum, error) {
	ps, err := NewPushSum(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Observe != nil {
		cfg.Observe(0, ps)
	}
	for r := 0; r < cfg.Rounds; r++ {
		ps.Step()
		if cfg.Observe != nil {
			cfg.Observe(ps.round, ps)
		}
	}
	return ps, nil
}

// Step runs one synchronous push-sum round.
func (ps *PushSum) Step() {
	ps.round++
	n := ps.cfg.N
	for i := 0; i < n; i++ {
		ps.nextS[i] = 0
		ps.nextW[i] = 0
	}
	for i := 0; i < n; i++ {
		halfS, halfW := ps.s[i]/2, ps.w[i]/2
		// Keep one half.
		ps.nextS[i] += halfS
		ps.nextW[i] += halfW
		// Push the other half to a random neighbor; a lost message
		// destroys that mass (the protocol has no acknowledgment).
		j := ps.overlay.Neighbor(i, ps.rng)
		if j < 0 {
			ps.nextS[i] += halfS
			ps.nextW[i] += halfW
			continue
		}
		if ps.rng.Bool(ps.cfg.MessageLoss) {
			continue
		}
		ps.nextS[j] += halfS
		ps.nextW[j] += halfW
	}
	ps.s, ps.nextS = ps.nextS, ps.s
	ps.w, ps.nextW = ps.nextW, ps.w
	ps.overlay.Step(ps.round)
}

// Round returns the number of completed rounds.
func (ps *PushSum) Round() int { return ps.round }

// Estimate returns node's current estimate s/w, or (0, false) when the
// node holds no weight yet.
func (ps *PushSum) Estimate(node int) (float64, bool) {
	if ps.w[node] <= 0 {
		return 0, false
	}
	return ps.s[node] / ps.w[node], true
}

// Moments summarizes the estimates of all nodes currently holding weight.
func (ps *PushSum) Moments() stats.Moments {
	var m stats.Moments
	for i := 0; i < ps.cfg.N; i++ {
		if est, ok := ps.Estimate(i); ok {
			m.Add(est)
		}
	}
	return m
}

// TotalMass returns the global sums Σs and Σw; with no loss both are
// invariants of the protocol.
func (ps *PushSum) TotalMass() (sumS, sumW float64) {
	for i := 0; i < ps.cfg.N; i++ {
		sumS += ps.s[i]
		sumW += ps.w[i]
	}
	return sumS, sumW
}

// PushOnly is the naive push-only averaging baseline: each round every
// node pushes its estimate to one random neighbor and the receiver moves
// to the midpoint. Updates are applied sequentially (same semantics as
// the paper's asynchronous exchanges), and the initiator never learns the
// receiver's value, so an individual exchange does not conserve the
// global sum.
type PushOnly struct {
	cfg     Config
	rng     *stats.RNG
	overlay sim.Overlay
	x       []float64
	perm    []int
	round   int
}

// NewPushOnly validates cfg (WInit is ignored) and initializes states.
func NewPushOnly(cfg Config) (*PushOnly, error) {
	if cfg.WInit == nil {
		cfg.WInit = func(int) float64 { return 1 }
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	overlay, err := cfg.Overlay(sim.OverlayContext{
		N:     cfg.N,
		RNG:   rng.Split(),
		Alive: func(int) bool { return true },
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: building overlay: %w", err)
	}
	po := &PushOnly{
		cfg:     cfg,
		rng:     rng,
		overlay: overlay,
		x:       make([]float64, cfg.N),
		perm:    make([]int, cfg.N),
	}
	for i := range po.x {
		po.x[i] = cfg.SInit(i)
	}
	return po, nil
}

// RunPushOnly executes all configured rounds.
func RunPushOnly(cfg Config) (*PushOnly, error) {
	po, err := NewPushOnly(cfg)
	if err != nil {
		return nil, err
	}
	for r := 0; r < cfg.Rounds; r++ {
		po.Step()
	}
	return po, nil
}

// Step runs one push-only round.
func (po *PushOnly) Step() {
	po.round++
	po.rng.Perm(po.perm)
	for _, i := range po.perm {
		j := po.overlay.Neighbor(i, po.rng)
		if j < 0 || po.rng.Bool(po.cfg.MessageLoss) {
			continue
		}
		po.x[j] = (po.x[i] + po.x[j]) / 2
	}
	po.overlay.Step(po.round)
}

// Value returns node's current estimate.
func (po *PushOnly) Value(node int) float64 { return po.x[node] }

// Moments summarizes all node estimates.
func (po *PushOnly) Moments() stats.Moments {
	var m stats.Moments
	for _, v := range po.x {
		m.Add(v)
	}
	return m
}
