package baseline

import (
	"math"
	"testing"

	"antientropy/internal/core"
	"antientropy/internal/sim"
	"antientropy/internal/stats"
	"antientropy/internal/topology"
)

func overlay(k int) sim.OverlayBuilder {
	return sim.StaticFunc(func(n int, rng *stats.RNG) (topology.Graph, error) {
		if k > n-1 {
			k = n - 1
		}
		return topology.NewRandomKOut(n, k, rng)
	})
}

func baseConfig(n int) Config {
	return Config{
		N:       n,
		Rounds:  40,
		Seed:    1,
		SInit:   func(i int) float64 { return float64(i) },
		WInit:   func(int) float64 { return 1 },
		Overlay: overlay(20),
	}
}

func TestPushSumValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.N = 0 }},
		{"negative rounds", func(c *Config) { c.Rounds = -1 }},
		{"missing sinit", func(c *Config) { c.SInit = nil }},
		{"missing winit", func(c *Config) { c.WInit = nil }},
		{"missing overlay", func(c *Config) { c.Overlay = nil }},
		{"bad loss", func(c *Config) { c.MessageLoss = 2 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(10)
			tc.mutate(&cfg)
			if _, err := NewPushSum(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestPushSumConvergesToAverage(t *testing.T) {
	const n = 1000
	ps, err := RunPushSum(baseConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	m := ps.Moments()
	want := float64(n-1) / 2
	if math.Abs(m.Mean()-want) > 1e-6*want {
		t.Fatalf("push-sum mean = %g, want %g", m.Mean(), want)
	}
	// Push-sum diffuses more slowly than push-pull; after 40 rounds the
	// relative spread should nevertheless be tiny.
	if (m.Max()-m.Min())/want > 1e-4 {
		t.Fatalf("push-sum not converged: spread %g", m.Max()-m.Min())
	}
}

func TestPushSumMassConservation(t *testing.T) {
	const n = 500
	cfg := baseConfig(n)
	cfg.Rounds = 10
	ps, err := RunPushSum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sumS, sumW := ps.TotalMass()
	wantS := float64(n*(n-1)) / 2
	if math.Abs(sumS-wantS) > 1e-6 {
		t.Fatalf("s mass = %g, want %g", sumS, wantS)
	}
	if math.Abs(sumW-float64(n)) > 1e-9 {
		t.Fatalf("w mass = %g, want %d", sumW, n)
	}
}

func TestPushSumCountMode(t *testing.T) {
	// COUNT via push-sum: s = 1 everywhere, w = 1 at a single node.
	const n = 800
	cfg := baseConfig(n)
	cfg.Rounds = 60
	cfg.SInit = func(int) float64 { return 1 }
	cfg.WInit = func(i int) float64 {
		if i == 0 {
			return 1
		}
		return 0
	}
	ps, err := RunPushSum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := ps.Moments()
	if m.N() < n*9/10 {
		t.Fatalf("only %d nodes hold weight after 60 rounds", m.N())
	}
	if math.Abs(m.Mean()-n) > 0.01*n {
		t.Fatalf("count estimate = %g, want %d", m.Mean(), n)
	}
}

func TestPushSumLosesMassUnderMessageLoss(t *testing.T) {
	const n = 500
	cfg := baseConfig(n)
	cfg.Rounds = 20
	cfg.MessageLoss = 0.2
	ps, err := RunPushSum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sumS, sumW := ps.TotalMass()
	wantS := float64(n*(n-1)) / 2
	if sumS >= wantS {
		t.Fatalf("message loss should destroy s-mass: %g >= %g", sumS, wantS)
	}
	if sumW >= float64(n) {
		t.Fatalf("message loss should destroy w-mass: %g >= %d", sumW, n)
	}
	// The ratio bias is bounded because s and w decay together — this is
	// Kempe's robustness argument; the estimate should still be usable.
	m := ps.Moments()
	want := float64(n-1) / 2
	if math.Abs(m.Mean()-want) > 0.2*want {
		t.Fatalf("push-sum estimate too biased: %g vs %g", m.Mean(), want)
	}
}

func TestPushSumObserverAndRound(t *testing.T) {
	calls := 0
	cfg := baseConfig(50)
	cfg.Rounds = 5
	cfg.Observe = func(round int, ps *PushSum) {
		if round != calls {
			t.Errorf("observer round %d, want %d", round, calls)
		}
		calls++
	}
	ps, err := RunPushSum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Fatalf("observer called %d times, want 6", calls)
	}
	if ps.Round() != 5 {
		t.Fatalf("Round = %d", ps.Round())
	}
}

func TestPushSumEstimateNoWeight(t *testing.T) {
	cfg := baseConfig(10)
	cfg.Rounds = 0
	cfg.WInit = func(i int) float64 {
		if i == 0 {
			return 1
		}
		return 0
	}
	ps, err := RunPushSum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ps.Estimate(5); ok {
		t.Fatal("weightless node produced an estimate")
	}
	if _, ok := ps.Estimate(0); !ok {
		t.Fatal("leader should have an estimate")
	}
}

func TestPushOnlyConvergesInExpectation(t *testing.T) {
	const n = 1000
	cfg := baseConfig(n)
	cfg.Rounds = 60
	po, err := RunPushOnly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := po.Moments()
	want := float64(n-1) / 2
	// Push-only drifts: only statistical accuracy, a few percent here.
	if math.Abs(m.Mean()-want)/want > 0.05 {
		t.Fatalf("push-only mean = %g, want ≈ %g", m.Mean(), want)
	}
	if m.Variance() > 1 {
		t.Fatalf("push-only failed to tighten estimates: variance %g", m.Variance())
	}
}

func TestPushOnlyDoesNotConserveMass(t *testing.T) {
	const n = 200
	cfg := baseConfig(n)
	cfg.Rounds = 5
	cfg.SInit = sim.PeakInit(float64(n), 0)
	po, err := RunPushOnly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += po.Value(i)
	}
	if math.Abs(total-float64(n)) < 1e-9 {
		t.Fatal("push-only conserved the sum exactly — that would make it push-pull")
	}
}

func TestPushOnlyDefaultsWInit(t *testing.T) {
	cfg := baseConfig(20)
	cfg.WInit = nil
	if _, err := NewPushOnly(cfg); err != nil {
		t.Fatalf("WInit should default for push-only: %v", err)
	}
}

func TestPushPullBeatsPushOnlyOnAccuracy(t *testing.T) {
	// The paper's central design claim, quantified: with the same overlay
	// and rounds, push-pull's worst-node error on the peak distribution
	// is orders of magnitude below push-only's mean drift.
	const n, rounds = 1000, 30
	ppCfg := sim.Config{
		N: n, Cycles: rounds, Seed: 3,
		Fn:      core.Average,
		Init:    sim.PeakInit(float64(n), 0),
		Overlay: overlay(20),
	}
	e, err := sim.Run(ppCfg)
	if err != nil {
		t.Fatal(err)
	}
	pp := e.ParticipantMoments()

	poCfg := baseConfig(n)
	poCfg.Rounds = rounds
	poCfg.Seed = 3
	poCfg.SInit = sim.PeakInit(float64(n), 0)
	po, err := RunPushOnly(poCfg)
	if err != nil {
		t.Fatal(err)
	}
	pom := po.Moments()

	ppErr := math.Max(math.Abs(pp.Max()-1), math.Abs(pp.Min()-1))
	poErr := math.Abs(pom.Mean() - 1)
	if ppErr*10 > poErr && poErr > 1e-12 {
		t.Fatalf("push-pull error %g not clearly below push-only drift %g", ppErr, poErr)
	}
}
