// Package overlay is the unified membership layer of the system: one
// implementation of the NEWSCAST partial-view protocol (paper §4.4)
// behind a single Membership API, shared by the serial simulator, the
// sharded simulator and the live agent runtime.
//
// The canonical representation is a flat, allocation-free packed cache
// (lifted out of the sharded engine, where it was ~5× faster per
// exchange than the earlier generic comparator-sorted cache): every
// descriptor is one uint64, (^stamp)<<32 | key, so that ascending
// primitive order is "freshest first, key ascending on ties". One
// primitive sort per merge replaces the comparator sorts that dominated
// whole-simulation profiles.
//
// Determinism contract: a merge keeps the cap freshest distinct keys of
// the union of both views plus both fresh self-descriptors, excluding
// the owner's own key; ties on the stamp are broken by ascending key.
// The packed cache and the legacy generic cache (package newscast, now a
// shim over Generic in this package) implement the identical contract —
// pinned by TestPackedMatchesGenericOnStampTies — so the serial engine,
// the sharded engine and the live agent produce identical merge results
// for identical inputs.
package overlay

import (
	"errors"
	"fmt"
	"slices"

	"antientropy/internal/stats"
)

// DefaultCacheSize is the cache size the paper recommends: "choosing
// c = 30 is already sufficient to obtain fast convergence … and very
// stable and robust connectivity" (§4.4).
const DefaultCacheSize = 30

// ErrBadCacheSize reports an invalid capacity.
var ErrBadCacheSize = errors.New("overlay: cache size must be at least 1")

// Entry is one unpacked node descriptor: a key (node id / interned
// address) and the logical timestamp at which the node injected it.
type Entry struct {
	Key   int32
	Stamp int32
}

// Pack encodes a descriptor so that ascending uint64 order is
// "freshest first, key ascending on ties".
func Pack(key, stamp int32) uint64 {
	return uint64(^uint32(stamp))<<32 | uint64(uint32(key))
}

// UnpackKey extracts the key of a packed descriptor.
func UnpackKey(e uint64) int32 { return int32(uint32(e)) }

// UnpackStamp extracts the stamp of a packed descriptor.
func UnpackStamp(e uint64) int32 { return int32(^uint32(e >> 32)) }

// Membership is one node's packed partial view of the network — the
// single membership API every engine and the live agent program against.
// It never contains the node's own descriptor and never exceeds its
// capacity. Membership is not safe for concurrent use.
type Membership struct {
	self int32
	cap  int
	// entries is the full-capacity backing array; the first n slots hold
	// the view in packed ascending order (freshest first). Rows of a
	// Table alias its shared backing; standalone caches own theirs.
	entries []uint64
	n       int32
	scratch []uint64
}

// NewMembership returns an empty standalone cache of capacity c for the
// node with the given key (the live agent's per-node instance; engines
// use NewTable).
func NewMembership(self int32, c int) (*Membership, error) {
	if c < 1 {
		return nil, ErrBadCacheSize
	}
	return &Membership{self: self, cap: c, entries: make([]uint64, c)}, nil
}

// Self returns the owning node's key.
func (m *Membership) Self() int32 { return m.self }

// Capacity returns the cache capacity c.
func (m *Membership) Capacity() int { return m.cap }

// Len returns the number of descriptors currently cached.
func (m *Membership) Len() int { return int(m.n) }

// Packed is the escape hatch: the live packed view, freshest first, key
// ascending on ties. The slice aliases the cache — callers must not
// modify it and must not retain it across mutations. It is what the
// engines' exchange loops and the agent's wire encoder consume without
// any per-call allocation.
func (m *Membership) Packed() []uint64 { return m.entries[:m.n] }

// Entries returns an unpacked copy of the cached descriptors, freshest
// first.
func (m *Membership) Entries() []Entry {
	out := make([]Entry, m.n)
	for i, e := range m.Packed() {
		out[i] = Entry{Key: UnpackKey(e), Stamp: UnpackStamp(e)}
	}
	return out
}

// Contains reports whether the cache holds a descriptor for key.
func (m *Membership) Contains(key int32) bool {
	_, ok := m.Stamp(key)
	return ok
}

// Stamp returns the timestamp cached for key (ok = false if absent).
func (m *Membership) Stamp(key int32) (int32, bool) {
	for _, e := range m.Packed() {
		if UnpackKey(e) == key {
			return UnpackStamp(e), true
		}
	}
	return 0, false
}

// Peer returns a uniformly random cached descriptor key, used by
// GETNEIGHBOR of the aggregation protocol and by NEWSCAST itself. The
// second result is false when the cache is empty.
func (m *Membership) Peer(rng *stats.RNG) (int32, bool) {
	if m.n == 0 {
		return 0, false
	}
	return UnpackKey(m.entries[rng.Intn(int(m.n))]), true
}

// View returns what the node sends in an exchange: its cache content
// plus its own descriptor stamped now. Nodes continuously inject their
// own fresh descriptor this way; crashed nodes, by definition, stop.
func (m *Membership) View(now int32) []Entry {
	out := make([]Entry, 0, m.n+1)
	for _, e := range m.Packed() {
		out = append(out, Entry{Key: UnpackKey(e), Stamp: UnpackStamp(e)})
	}
	return append(out, Entry{Key: m.self, Stamp: now})
}

// AppendView appends the packed view (cache content plus a fresh self
// descriptor) to dst — the allocation-free counterpart of View.
func (m *Membership) AppendView(dst []uint64, now int32) []uint64 {
	dst = append(dst, m.Packed()...)
	return append(dst, Pack(m.self, now))
}

// smallAbsorb is the remote-size threshold below which Absorb updates
// the view incrementally instead of re-sorting the whole union — the
// steady-state case for the live agent, whose delta frames carry a
// handful of descriptors.
const smallAbsorb = 8

// Absorb merges remote descriptors into the cache: the union of the
// current content and the remote view is deduplicated per key keeping
// the freshest stamp, the node's own descriptor is dropped, and the cap
// freshest survivors are kept (stamp ties broken by ascending key).
func (m *Membership) Absorb(remote []Entry) {
	if len(remote) <= smallAbsorb {
		for _, e := range remote {
			m.absorbOne(Pack(e.Key, e.Stamp))
		}
		return
	}
	scratch := m.scratch[:0]
	for _, e := range remote {
		if e.Key != m.self {
			scratch = append(scratch, Pack(e.Key, e.Stamp))
		}
	}
	m.scratch = m.absorbScratch(scratch)
}

// AbsorbPacked merges an already-packed remote view into the cache.
func (m *Membership) AbsorbPacked(remote []uint64) {
	if len(remote) <= smallAbsorb {
		for _, e := range remote {
			m.absorbOne(e)
		}
		return
	}
	scratch := m.scratch[:0]
	for _, e := range remote {
		if UnpackKey(e) != m.self {
			scratch = append(scratch, e)
		}
	}
	m.scratch = m.absorbScratch(scratch)
}

// absorbOne merges a single descriptor, keeping the view sorted. It is
// exactly the batch merge applied one candidate at a time: trimming to
// cap only ever drops the current stalest survivor and later candidates
// only raise the bar, so the sequential result equals the batch top-cap
// of the union.
func (m *Membership) absorbOne(e uint64) {
	key := UnpackKey(e)
	if key == m.self {
		return
	}
	for i, x := range m.Packed() {
		if UnpackKey(x) != key {
			continue
		}
		if x <= e {
			return // cached descriptor is at least as fresh
		}
		copy(m.entries[i:m.n-1], m.entries[i+1:m.n])
		m.n--
		break
	}
	at, _ := slices.BinarySearch(m.entries[:m.n], e)
	if at == m.cap {
		return // staler than a full view's every entry
	}
	if int(m.n) < m.cap {
		m.n++
	}
	copy(m.entries[at+1:m.n], m.entries[at:m.n-1])
	m.entries[at] = e
}

// absorbScratch completes a merge whose remote half (self already
// filtered) sits in scratch: append the current view, sort, keep the
// first occurrence of each key — ascending packed order makes that the
// freshest descriptor — and write back at most cap survivors. Returns
// the scratch buffer for reuse.
func (m *Membership) absorbScratch(scratch []uint64) []uint64 {
	scratch = append(scratch, m.Packed()...)
	slices.Sort(scratch)
	w := 0
	for r := 0; r < len(scratch) && w < m.cap; r++ {
		key := UnpackKey(scratch[r])
		dup := false
		for x := 0; x < w; x++ {
			if UnpackKey(scratch[x]) == key {
				dup = true
				break
			}
		}
		if !dup {
			scratch[w] = scratch[r]
			w++
		}
	}
	copy(m.entries, scratch[:w])
	m.n = int32(w)
	return scratch[:0]
}

// Seed bootstraps the cache of a joining node from out-of-band contacts
// (§4.2 assumes such a discovery mechanism exists). Existing content is
// replaced.
func (m *Membership) Seed(entries []Entry) {
	m.n = 0
	m.Absorb(entries)
}

// SeedRandom fills the view with up to size distinct random peers drawn
// uniformly from [0, total), excluding the node itself, all stamped now —
// the engines' warmed-up bootstrap. Like a real joiner's out-of-band
// contact list, the sample may briefly include a dead slot; NEWSCAST
// repairs that within a cycle or two. The rejection-sampling draw order
// is part of the sharded engine's determinism contract — do not reorder.
func (m *Membership) SeedRandom(size, total int, now int32, rng *stats.RNG) {
	if size > m.cap {
		size = m.cap
	}
	if size < 1 {
		m.n = 0
		return
	}
	w := 0
	for w < size {
		c := rng.Intn(total)
		if int32(c) == m.self {
			continue
		}
		dup := false
		for x := 0; x < w; x++ {
			if UnpackKey(m.entries[x]) == int32(c) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		m.entries[w] = Pack(int32(c), now)
		w++
	}
	// Restore the freshest-first, key-ascending storage order (all
	// stamps are equal here, so this is a key sort).
	slices.Sort(m.entries[:w])
	m.n = int32(w)
}

// Oldest returns the smallest stamp in the cache (0, false when empty);
// used to monitor overlay freshness and in tests of crash repair.
func (m *Membership) Oldest() (int32, bool) {
	if m.n == 0 {
		return 0, false
	}
	// Packed order is freshest first, so the minimum stamp is near the
	// end — but equal-stamp runs sort by key, so scan the whole view.
	min := UnpackStamp(m.entries[0])
	for _, e := range m.entries[1:m.n] {
		if s := UnpackStamp(e); s < min {
			min = s
		}
	}
	return min, true
}

// Exchange performs one full NEWSCAST exchange between two live nodes at
// logical time now: both merge the union of both views plus both fresh
// self-descriptors. For standalone caches; engines use Table.Exchange,
// which is the same merge on shared backing storage.
func Exchange(a, b *Membership, now int32) {
	va := a.AppendView(nil, now)
	vb := b.AppendView(nil, now)
	a.AbsorbPacked(vb)
	b.AbsorbPacked(va)
}

// Table is a flat array of N packed views sharing one backing slice —
// the engines' representation. Row i is node i's Membership with
// self = i; a 10⁶-node table is two allocations.
type Table struct {
	cap     int
	rows    []Membership
	backing []uint64
}

// NewTable builds an empty table of n views with capacity c each.
func NewTable(n, c int) (*Table, error) {
	if c < 1 {
		return nil, ErrBadCacheSize
	}
	if n < 1 {
		return nil, fmt.Errorf("overlay: invalid table size %d", n)
	}
	t := &Table{
		cap:     c,
		rows:    make([]Membership, n),
		backing: make([]uint64, n*c),
	}
	for i := range t.rows {
		t.rows[i] = Membership{
			self:    int32(i),
			cap:     c,
			entries: t.backing[i*c : (i+1)*c : (i+1)*c],
		}
	}
	return t, nil
}

// N returns the number of views.
func (t *Table) N() int { return len(t.rows) }

// Cap returns the per-view capacity c.
func (t *Table) Cap() int { return t.cap }

// At returns node i's Membership. The handle is live: it reads and
// writes the table's storage.
func (t *Table) At(i int) *Membership { return &t.rows[i] }

// Neighbor draws a uniform member of node i's current view (-1 when the
// view is empty) — GETNEIGHBOR on the table without the tuple return.
func (t *Table) Neighbor(i int, rng *stats.RNG) int {
	m := &t.rows[i]
	if m.n == 0 {
		return -1
	}
	return int(UnpackKey(m.entries[rng.Intn(int(m.n))]))
}

// Exchange performs one full NEWSCAST exchange between live nodes i and
// j at logical time cycle, using (and returning) the caller's scratch
// buffer: both views merge the union of both views plus both fresh
// self-descriptors and keep the freshest cap distinct keys excluding
// their own. The union is deduplicated with a single primitive sort:
// ascending packed order is stamp-descending, so the first occurrence of
// a key is its freshest descriptor and the scan can stop once cap+1
// survivors are kept.
func (t *Table) Exchange(scratch []uint64, i, j, cycle int) []uint64 {
	now := int32(cycle)
	scratch = scratch[:0]
	scratch = append(scratch, Pack(int32(i), now), Pack(int32(j), now))
	scratch = append(scratch, t.rows[i].Packed()...)
	scratch = append(scratch, t.rows[j].Packed()...)
	slices.Sort(scratch)
	w := 0
	for r := 0; r < len(scratch) && w < t.cap+1; r++ {
		key := UnpackKey(scratch[r])
		dup := false
		for x := 0; x < w; x++ {
			if UnpackKey(scratch[x]) == key {
				dup = true
				break
			}
		}
		if !dup {
			scratch[w] = scratch[r]
			w++
		}
	}
	kept := scratch[:w]
	t.writeBack(i, kept)
	t.writeBack(j, kept)
	return scratch
}

// writeBack installs the merged view for node: the kept survivors minus
// the node's own descriptor, truncated to cap. Because kept holds the
// cap+1 freshest distinct keys of the union, dropping the node's own key
// leaves exactly the cap freshest foreign descriptors.
func (t *Table) writeBack(node int, kept []uint64) {
	m := &t.rows[node]
	w := 0
	for _, entry := range kept {
		if int(UnpackKey(entry)) == node {
			continue
		}
		m.entries[w] = entry
		w++
		if w == t.cap {
			break
		}
	}
	m.n = int32(w)
}
