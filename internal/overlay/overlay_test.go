package overlay

import (
	"slices"
	"testing"

	"antientropy/internal/stats"
)

func TestPackUnpack(t *testing.T) {
	cases := []Entry{
		{Key: 0, Stamp: 0},
		{Key: 1, Stamp: 0},
		{Key: 1 << 30, Stamp: 1 << 30},
		{Key: 42, Stamp: 2147483647},
	}
	for _, e := range cases {
		p := Pack(e.Key, e.Stamp)
		if UnpackKey(p) != e.Key || UnpackStamp(p) != e.Stamp {
			t.Errorf("pack/unpack mangled %+v -> (%d, %d)", e, UnpackKey(p), UnpackStamp(p))
		}
	}
	// Ascending packed order must be freshest-first, key-ascending on ties.
	if !(Pack(5, 9) < Pack(3, 8)) {
		t.Error("fresher stamp must order first")
	}
	if !(Pack(3, 9) < Pack(5, 9)) {
		t.Error("equal stamps must order by ascending key")
	}
}

func TestMembershipAbsorbKeepsFreshest(t *testing.T) {
	m, err := NewMembership(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Absorb([]Entry{{Key: 2, Stamp: 1}, {Key: 3, Stamp: 2}, {Key: 1, Stamp: 99}})
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2 (own descriptor dropped)", m.Len())
	}
	if m.Contains(1) {
		t.Fatal("cache holds own descriptor")
	}
	// A fresher duplicate wins; a staler one is ignored.
	m.Absorb([]Entry{{Key: 2, Stamp: 5}, {Key: 3, Stamp: 0}})
	if s, _ := m.Stamp(2); s != 5 {
		t.Fatalf("stamp(2) = %d, want 5", s)
	}
	if s, _ := m.Stamp(3); s != 2 {
		t.Fatalf("stamp(3) = %d, want 2", s)
	}
	// Capacity eviction drops the oldest.
	m.Absorb([]Entry{{Key: 4, Stamp: 7}, {Key: 5, Stamp: 6}})
	if m.Len() != 3 || m.Contains(3) {
		t.Fatalf("eviction wrong: len=%d entries=%v", m.Len(), m.Entries())
	}
	if old, ok := m.Oldest(); !ok || old != 5 {
		t.Fatalf("oldest = %d, want 5", old)
	}
}

func TestMembershipSeedReplaces(t *testing.T) {
	m, _ := NewMembership(0, 4)
	m.Absorb([]Entry{{Key: 9, Stamp: 1}})
	m.Seed([]Entry{{Key: 1, Stamp: 3}, {Key: 2, Stamp: 3}})
	if m.Len() != 2 || m.Contains(9) {
		t.Fatalf("seed did not replace: %v", m.Entries())
	}
}

func TestTableExchangeMatchesStandalone(t *testing.T) {
	// Table.Exchange (the engines' fast path) and the standalone
	// Exchange over two Memberships must produce identical views.
	tbl, err := NewTable(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewMembership(0, 3)
	b, _ := NewMembership(1, 3)
	seedA := []Entry{{Key: 2, Stamp: 4}, {Key: 3, Stamp: 2}, {Key: 4, Stamp: 6}}
	seedB := []Entry{{Key: 2, Stamp: 5}, {Key: 5, Stamp: 1}, {Key: 0, Stamp: 3}}
	tbl.At(0).Seed(seedA)
	tbl.At(1).Seed(seedB)
	a.Seed(seedA)
	b.Seed(seedB)

	tbl.Exchange(nil, 0, 1, 7)
	Exchange(a, b, 7)

	if !slices.Equal(tbl.At(0).Packed(), a.Packed()) {
		t.Errorf("node 0: table %v vs standalone %v", tbl.At(0).Entries(), a.Entries())
	}
	if !slices.Equal(tbl.At(1).Packed(), b.Packed()) {
		t.Errorf("node 1: table %v vs standalone %v", tbl.At(1).Entries(), b.Entries())
	}
}

// TestPackedMatchesGenericOnStampTies pins the cross-engine determinism
// contract: the packed cache (serial engine, sharded engine, live agent)
// and the legacy generic cache (the newscast compatibility shim) must
// produce identical merge results descriptor for descriptor — including
// the equal-stamp cases, where ties break by ascending key. Fixtures
// deliberately saturate the caches with one shared stamp so every
// ordering decision is a tie-break.
func TestPackedMatchesGenericOnStampTies(t *testing.T) {
	cases := []struct {
		name  string
		cap   int
		selfA int32
		selfB int32
		viewA []Entry // pre-exchange cache of A
		viewB []Entry // pre-exchange cache of B
		now   int32
	}{
		{
			name: "all stamps equal, overflow forces tie eviction",
			cap:  2, selfA: 1, selfB: 2, now: 10,
			viewA: []Entry{{5, 10}, {6, 10}},
			viewB: []Entry{{3, 10}, {4, 10}},
		},
		{
			name: "disjoint views, equal stamps, no overlap with selves",
			cap:  2, selfA: 1, selfB: 2, now: 10,
			viewA: []Entry{{5, 10}, {6, 10}},
			viewB: []Entry{{7, 10}, {8, 10}},
		},
		{
			name: "duplicate key with equal stamps on both sides",
			cap:  3, selfA: 0, selfB: 9, now: 4,
			viewA: []Entry{{7, 4}, {3, 4}, {9, 1}},
			viewB: []Entry{{7, 4}, {5, 4}, {0, 2}},
		},
		{
			name: "fresh self descriptors tie with cached foreign ones",
			cap:  3, selfA: 2, selfB: 7, now: 6,
			viewA: []Entry{{4, 6}, {5, 6}, {6, 6}},
			viewB: []Entry{{1, 6}, {3, 6}, {8, 6}},
		},
		{
			name: "mixed stamps with a tie exactly at the eviction boundary",
			cap:  3, selfA: 10, selfB: 11, now: 9,
			viewA: []Entry{{1, 9}, {2, 5}, {3, 5}},
			viewB: []Entry{{4, 5}, {5, 5}, {6, 3}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pa, _ := NewMembership(tc.selfA, tc.cap)
			pb, _ := NewMembership(tc.selfB, tc.cap)
			pa.Seed(tc.viewA)
			pb.Seed(tc.viewB)
			ga, _ := NewGeneric(tc.selfA, tc.cap)
			gb, _ := NewGeneric(tc.selfB, tc.cap)
			ga.Seed(toGeneric(tc.viewA))
			gb.Seed(toGeneric(tc.viewB))

			Exchange(pa, pb, tc.now)
			ExchangeGeneric(ga, gb, int64(tc.now))

			for _, pair := range []struct {
				p *Membership
				g *Generic[int32]
			}{{pa, ga}, {pb, gb}} {
				got := pair.p.Entries()
				want := pair.g.Entries()
				if len(got) != len(want) {
					t.Fatalf("node %d: packed %v vs generic %v", pair.p.Self(), got, want)
				}
				for i := range got {
					if got[i].Key != want[i].Key || int64(got[i].Stamp) != want[i].Stamp {
						t.Fatalf("node %d entry %d: packed %v vs generic %v",
							pair.p.Self(), i, got, want)
					}
				}
			}
		})
	}
}

func toGeneric(es []Entry) []GenericEntry[int32] {
	out := make([]GenericEntry[int32], len(es))
	for i, e := range es {
		out[i] = GenericEntry[int32]{Key: e.Key, Stamp: int64(e.Stamp)}
	}
	return out
}

func TestSeedRandomDistinctAndSorted(t *testing.T) {
	m, _ := NewMembership(3, 10)
	m.SeedRandom(8, 20, 5, stats.NewRNG(1))
	if m.Len() != 8 {
		t.Fatalf("len = %d, want 8", m.Len())
	}
	seen := map[int32]bool{}
	for _, e := range m.Entries() {
		if e.Key == 3 {
			t.Fatal("seeded with self")
		}
		if e.Stamp != 5 {
			t.Fatalf("stamp %d, want 5", e.Stamp)
		}
		if seen[e.Key] {
			t.Fatalf("duplicate key %d", e.Key)
		}
		seen[e.Key] = true
	}
	if !slices.IsSorted(m.Packed()) {
		t.Fatal("packed view not in storage order")
	}
}

func TestBookInterning(t *testing.T) {
	b := NewBook()
	a1 := b.Intern("node-a")
	b1 := b.Intern("node-b")
	if a1 == b1 {
		t.Fatal("distinct addrs share an id")
	}
	if again := b.Intern("node-a"); again != a1 {
		t.Fatalf("re-intern changed id: %d vs %d", again, a1)
	}
	if got := b.Addr(b1); got != "node-b" {
		t.Fatalf("Addr(%d) = %q", b1, got)
	}
	if _, ok := b.Lookup("node-c"); ok {
		t.Fatal("lookup invented an id")
	}
	if b.Addr(99) != "" {
		t.Fatal("unknown id resolved")
	}
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestSplitAddrList(t *testing.T) {
	got := SplitAddrList(" a:1, ,b:2,")
	if !slices.Equal(got, []string{"a:1", "b:2"}) {
		t.Fatalf("got %v", got)
	}
	if out := SplitAddrList(""); len(out) != 0 {
		t.Fatalf("empty input produced %v", out)
	}
}

func TestBadSizes(t *testing.T) {
	if _, err := NewMembership(0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewTable(0, 5); err == nil {
		t.Error("zero-row table accepted")
	}
	if _, err := NewTable(5, 0); err == nil {
		t.Error("zero-capacity table accepted")
	}
}

// TestSmallAbsorbMatchesBatch pins the incremental fast path against
// the batch merge: absorbing any small remote set must produce exactly
// the view a batch union-merge produces, across duplicates, self
// descriptors, ties and cap evictions.
func TestSmallAbsorbMatchesBatch(t *testing.T) {
	rng := stats.NewRNG(42)
	for trial := 0; trial < 2000; trial++ {
		cap := 1 + rng.Intn(6)
		fast, _ := NewMembership(3, cap)
		slow, _ := NewMembership(3, cap)
		seed := make([]Entry, rng.Intn(8))
		for i := range seed {
			seed[i] = Entry{Key: int32(rng.Intn(10)), Stamp: int32(rng.Intn(6))}
		}
		fast.Seed(seed)
		slow.Seed(seed)
		if !slices.Equal(fast.Packed(), slow.Packed()) {
			t.Fatalf("trial %d: seeds diverge", trial)
		}
		remote := make([]Entry, rng.Intn(int(smallAbsorb)+1))
		for i := range remote {
			remote[i] = Entry{Key: int32(rng.Intn(10)), Stamp: int32(rng.Intn(6))}
		}
		fast.Absorb(remote) // small path
		// Force the batch path by padding with self descriptors, which
		// the merge drops.
		padded := append(append([]Entry(nil), remote...),
			Entry{Key: 3, Stamp: 1}, Entry{Key: 3, Stamp: 2}, Entry{Key: 3, Stamp: 3},
			Entry{Key: 3, Stamp: 1}, Entry{Key: 3, Stamp: 2}, Entry{Key: 3, Stamp: 3},
			Entry{Key: 3, Stamp: 1}, Entry{Key: 3, Stamp: 2}, Entry{Key: 3, Stamp: 3})
		slow.Absorb(padded)
		if !slices.Equal(fast.Packed(), slow.Packed()) {
			t.Fatalf("trial %d: cap=%d seed=%v remote=%v\n fast=%v\n slow=%v",
				trial, cap, seed, remote, fast.Entries(), slow.Entries())
		}
	}
}
