package overlay

import (
	"cmp"
	"slices"

	"antientropy/internal/stats"
)

// Generic is the legacy comparator-sorted NEWSCAST cache, generic over
// an ordered key type. It predates the packed Membership representation
// and survives only behind the package newscast compatibility shim; new
// code should use Membership (engines: Table), which implements the
// identical merge contract ~5× faster. The two are pinned against each
// other by TestPackedMatchesGenericOnStampTies.
type Generic[K cmp.Ordered] struct {
	self    K
	cap     int
	entries []GenericEntry[K]
	scratch []GenericEntry[K]
}

// GenericEntry is a node descriptor of the legacy cache: a key
// (identifier/address) and the timestamp at which the node injected it.
type GenericEntry[K cmp.Ordered] struct {
	Key   K
	Stamp int64
}

// NewGeneric returns an empty legacy cache of capacity c for node self.
func NewGeneric[K cmp.Ordered](self K, c int) (*Generic[K], error) {
	if c < 1 {
		return nil, ErrBadCacheSize
	}
	return &Generic[K]{self: self, cap: c, entries: make([]GenericEntry[K], 0, c)}, nil
}

// Self returns the owning node's key.
func (c *Generic[K]) Self() K { return c.self }

// Capacity returns the cache capacity c.
func (c *Generic[K]) Capacity() int { return c.cap }

// Len returns the number of descriptors currently cached.
func (c *Generic[K]) Len() int { return len(c.entries) }

// Entries returns a copy of the cached descriptors.
func (c *Generic[K]) Entries() []GenericEntry[K] {
	return append([]GenericEntry[K](nil), c.entries...)
}

// Contains reports whether the cache holds a descriptor for key.
func (c *Generic[K]) Contains(key K) bool {
	for _, e := range c.entries {
		if e.Key == key {
			return true
		}
	}
	return false
}

// Stamp returns the timestamp cached for key (ok = false if absent).
func (c *Generic[K]) Stamp(key K) (int64, bool) {
	for _, e := range c.entries {
		if e.Key == key {
			return e.Stamp, true
		}
	}
	return 0, false
}

// Seed bootstraps the cache of a joining node from out-of-band contacts
// (§4.2 assumes such a discovery mechanism exists). Existing content is
// replaced.
func (c *Generic[K]) Seed(entries []GenericEntry[K]) {
	c.entries = c.entries[:0]
	c.Absorb(entries)
}

// Peer returns a uniformly random cached descriptor key. The second
// result is false when the cache is empty.
func (c *Generic[K]) Peer(rng *stats.RNG) (K, bool) {
	if len(c.entries) == 0 {
		var zero K
		return zero, false
	}
	return c.entries[rng.Intn(len(c.entries))].Key, true
}

// View returns what the node sends in an exchange: its cache content plus
// its own descriptor stamped now.
func (c *Generic[K]) View(now int64) []GenericEntry[K] {
	out := make([]GenericEntry[K], 0, len(c.entries)+1)
	out = append(out, c.entries...)
	return append(out, GenericEntry[K]{Key: c.self, Stamp: now})
}

// Absorb merges remote descriptors into the cache: the union of the
// current content and the remote view is deduplicated per key keeping the
// freshest stamp, the node's own descriptor is dropped, and the c
// freshest survivors are kept. Ties on the stamp are broken by key so
// that the merge is fully deterministic — the same contract the packed
// Membership implements.
func (c *Generic[K]) Absorb(remote []GenericEntry[K]) {
	// merged is built in the reusable scratch buffer; entries and scratch
	// never share a backing array because the result is always copied back.
	merged := append(c.scratch[:0], c.entries...)
	for _, e := range remote {
		if e.Key != c.self {
			merged = append(merged, e)
		}
	}
	// Group per key with the freshest stamp first, then dedupe in place.
	slices.SortFunc(merged, func(a, b GenericEntry[K]) int {
		if a.Key != b.Key {
			return cmp.Compare(a.Key, b.Key)
		}
		return cmp.Compare(b.Stamp, a.Stamp)
	})
	out := merged[:0]
	for i, e := range merged {
		if i == 0 || e.Key != merged[i-1].Key {
			out = append(out, e)
		}
	}
	// Keep the c freshest (stamp desc, key asc on ties).
	slices.SortFunc(out, func(a, b GenericEntry[K]) int {
		if a.Stamp != b.Stamp {
			return cmp.Compare(b.Stamp, a.Stamp)
		}
		return cmp.Compare(a.Key, b.Key)
	})
	if len(out) > c.cap {
		out = out[:c.cap]
	}
	c.entries = append(c.entries[:0], out...)
	c.scratch = merged[:0]
}

// ExchangeGeneric performs one full NEWSCAST exchange between two live
// nodes at logical time now: both send their view (cache + fresh self
// descriptor) and both absorb the other's view.
func ExchangeGeneric[K cmp.Ordered](a, b *Generic[K], now int64) {
	va := a.View(now)
	vb := b.View(now)
	a.Absorb(vb)
	b.Absorb(va)
}

// Oldest returns the smallest stamp in the cache (0, false when empty).
func (c *Generic[K]) Oldest() (int64, bool) {
	if len(c.entries) == 0 {
		return 0, false
	}
	min := c.entries[0].Stamp
	for _, e := range c.entries[1:] {
		if e.Stamp < min {
			min = e.Stamp
		}
	}
	return min, true
}
