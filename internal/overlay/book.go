package overlay

import "strings"

// SplitAddrList parses a comma-separated contact list ("a:1, b:2,") into
// the address slice the membership constructors take, trimming blanks —
// the one seeding-boilerplate parser shared by every CLI and example.
func SplitAddrList(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Book interns transport addresses to the dense int32 keys the packed
// Membership representation needs, and resolves them back for the wire.
// Ids are assigned in first-seen order and never recycled: a live node
// meets a few thousand distinct peers over its lifetime at most, and
// 32 bits of id space outlast any deployment. Book is not safe for
// concurrent use — the agent serializes access under its node mutex.
type Book struct {
	ids   map[string]int32
	addrs []string
}

// NewBook returns an empty address book.
func NewBook() *Book {
	return &Book{ids: make(map[string]int32)}
}

// Intern returns the id for addr, assigning the next free id on first
// sight.
func (b *Book) Intern(addr string) int32 {
	if id, ok := b.ids[addr]; ok {
		return id
	}
	id := int32(len(b.addrs))
	b.ids[addr] = id
	b.addrs = append(b.addrs, addr)
	return id
}

// Lookup returns the id for addr without assigning one.
func (b *Book) Lookup(addr string) (int32, bool) {
	id, ok := b.ids[addr]
	return id, ok
}

// Addr resolves an id back to its address ("" for an unknown id).
func (b *Book) Addr(id int32) string {
	if id < 0 || int(id) >= len(b.addrs) {
		return ""
	}
	return b.addrs[id]
}

// Len returns the number of interned addresses.
func (b *Book) Len() int { return len(b.addrs) }
