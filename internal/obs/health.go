package obs

import (
	"log/slog"
	"math"
)

// HealthSample is one cycle's worth of fleet state fed to the health
// engine: the scenario snapshot plus the cumulative protocol counters
// the rules difference between cycles.
type HealthSample struct {
	Cycle int
	Epoch uint64
	// Alive and Participating count the fleet.
	Alive         int
	Participating int
	// Estimate quality.
	TrueMean       float64
	MeanEstimate   float64
	EstimateStdDev float64
	RelError       float64
	// RhoHat is the observed per-cycle variance-reduction factor, 0
	// when not computable this cycle (epoch boundary, zero variance).
	// TheoryRho is the expected value (theory.RhoPushPull).
	RhoHat    float64
	TheoryRho float64
	// Cumulative protocol counters (fleet-wide totals).
	Initiated int64
	Completed int64
	Timeouts  int64
	Declined  int64
	// Drops is the cumulative transport drop count (queue + filter).
	Drops int64
}

// HealthConfig tunes the rule thresholds. The zero value selects the
// documented defaults.
type HealthConfig struct {
	// StallRatio and StallCycles define convergence_stall: ρ̂ >
	// StallRatio × theory for StallCycles consecutive evaluable
	// cycles, while the estimate spread is still meaningfully wide
	// (relative stddev above StallMinSpread). Defaults 2, 5, 1e-3.
	StallRatio     float64
	StallCycles    int
	StallMinSpread float64
	// DriftRelError and DriftCycles define mass_drift: relative
	// estimation error above DriftRelError for DriftCycles consecutive
	// cycles late in an epoch would mean mass was lost or injected.
	// Defaults 0.25, 6.
	DriftRelError float64
	DriftCycles   int
	// LossRatio, LossMinAttempts and LossCycles define
	// exchange_loss_spike: per-cycle (timeouts+declined)/initiated
	// above LossRatio over at least LossMinAttempts attempts for
	// LossCycles consecutive cycles. Defaults 0.5, 8, 3.
	LossRatio       float64
	LossMinAttempts int64
	LossCycles      int
	// PartitionTimeoutShare, PartitionSkew and PartitionCycles define
	// partition_suspect: timeouts alone take more than
	// PartitionTimeoutShare of attempts AND outnumber declines by
	// PartitionSkew× — peers silently unreachable rather than busy —
	// for PartitionCycles consecutive cycles. Defaults 0.2, 3, 3.
	PartitionTimeoutShare float64
	PartitionSkew         float64
	PartitionCycles       int
	// Logger receives structured fire/clear events (nil: discard).
	Logger *slog.Logger
}

// Health rule names, the `rule` label values of agg_alerts_total.
const (
	RuleConvergenceStall  = "convergence_stall"
	RuleMassDrift         = "mass_drift"
	RuleExchangeLossSpike = "exchange_loss_spike"
	RulePartitionSuspect  = "partition_suspect"
)

// healthRuleNames lists every rule so the exported series exist (at
// zero) from the first scrape, before anything fires.
var healthRuleNames = []string{
	RuleConvergenceStall, RuleMassDrift, RuleExchangeLossSpike, RulePartitionSuspect,
}

// healthRule is one rule's streak state.
type healthRule struct {
	name    string
	need    int // consecutive true evaluations before firing
	streak  int
	active  bool
	fired   *Counter
	activeG *Gauge
}

// Health evaluates the fleet health rules once per cycle, maintaining
// per-rule streaks so one noisy cycle does not page anyone: a rule
// fires after its condition holds for K consecutive cycles, stays
// active while the condition holds, and clears on the first clean
// cycle. Transitions bump agg_alerts_total{rule=...}, flip
// agg_alert_active{rule=...} and emit structured slog events. Not
// safe for concurrent use — drive it from one sampling loop.
type Health struct {
	cfg   HealthConfig
	log   *slog.Logger
	rules map[string]*healthRule

	havePrev bool
	prev     HealthSample
}

// NewHealth builds the engine, registering the alert metric families
// on reg (nil reg: metrics are kept internally but not exported).
// Zero-valued config fields take the documented defaults.
func NewHealth(reg *Registry, cfg HealthConfig) *Health {
	if cfg.StallRatio <= 0 {
		cfg.StallRatio = 2
	}
	if cfg.StallCycles <= 0 {
		cfg.StallCycles = 5
	}
	if cfg.StallMinSpread <= 0 {
		cfg.StallMinSpread = 1e-3
	}
	if cfg.DriftRelError <= 0 {
		cfg.DriftRelError = 0.25
	}
	if cfg.DriftCycles <= 0 {
		cfg.DriftCycles = 6
	}
	if cfg.LossRatio <= 0 {
		cfg.LossRatio = 0.5
	}
	if cfg.LossMinAttempts <= 0 {
		cfg.LossMinAttempts = 8
	}
	if cfg.LossCycles <= 0 {
		cfg.LossCycles = 3
	}
	if cfg.PartitionTimeoutShare <= 0 {
		cfg.PartitionTimeoutShare = 0.2
	}
	if cfg.PartitionSkew <= 0 {
		cfg.PartitionSkew = 3
	}
	if cfg.PartitionCycles <= 0 {
		cfg.PartitionCycles = 3
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	if reg == nil {
		reg = NewRegistry()
	}
	fired := reg.CounterVec("agg_alerts_total",
		"Health-rule alert firings (transitions into the active state).", "rule")
	activeG := reg.GaugeVec("agg_alert_active",
		"Health rules currently active (1) or clear (0).", "rule")
	h := &Health{cfg: cfg, log: log, rules: make(map[string]*healthRule)}
	need := map[string]int{
		RuleConvergenceStall:  cfg.StallCycles,
		RuleMassDrift:         cfg.DriftCycles,
		RuleExchangeLossSpike: cfg.LossCycles,
		RulePartitionSuspect:  cfg.PartitionCycles,
	}
	for _, name := range healthRuleNames {
		r := &healthRule{
			name:    name,
			need:    need[name],
			fired:   fired.With(name),
			activeG: activeG.With(name),
		}
		r.activeG.Set(0)
		h.rules[name] = r
	}
	return h
}

// Eval feeds one cycle's sample through every rule and returns the
// names of the rules active after this cycle (sorted by the canonical
// rule order), for the timeline's alerts column.
func (h *Health) Eval(s HealthSample) []string {
	conds := h.conditions(s)
	h.prev, h.havePrev = s, true
	var active []string
	for _, name := range healthRuleNames {
		r := h.rules[name]
		if h.step(r, conds[name], s) {
			active = append(active, name)
		}
	}
	return active
}

// step advances one rule's streak machine and reports whether it is
// active after this cycle.
func (h *Health) step(r *healthRule, cond bool, s HealthSample) bool {
	if !cond {
		r.streak = 0
		if r.active {
			r.active = false
			r.activeG.Set(0)
			h.log.Info("health alert cleared", "rule", r.name, "cycle", s.Cycle, "epoch", s.Epoch)
		}
		return false
	}
	r.streak++
	if !r.active && r.streak >= r.need {
		r.active = true
		r.fired.Inc()
		r.activeG.Set(1)
		h.log.Warn("health alert fired", "rule", r.name, "cycle", s.Cycle, "epoch", s.Epoch,
			"rho_hat", s.RhoHat, "rel_error", s.RelError, "alive", s.Alive)
	}
	return r.active
}

// conditions evaluates each rule's raw per-cycle condition.
func (h *Health) conditions(s HealthSample) map[string]bool {
	out := make(map[string]bool, len(healthRuleNames))

	// convergence_stall: the variance-reduction factor is computable
	// and far above theory while the estimates are still spread out —
	// the signature of a partitioned or loss-choked fleet whose global
	// variance has stopped halving. The spread floor keeps converged
	// fleets (where ρ̂ is numerical noise over ~0 variance) quiet.
	spread := math.Abs(s.EstimateStdDev)
	floor := h.cfg.StallMinSpread * math.Max(math.Abs(s.MeanEstimate), 1)
	out[RuleConvergenceStall] = s.RhoHat > 0 && s.TheoryRho > 0 &&
		s.RhoHat > h.cfg.StallRatio*s.TheoryRho && spread > floor

	// mass_drift: the fleet mean is persistently far from ground
	// truth — mass left (crashes mid-exchange) or was injected.
	out[RuleMassDrift] = s.RelError > h.cfg.DriftRelError

	// Delta-based rules need a previous sample.
	var dAttempts, dTimeouts, dDeclined float64
	if h.havePrev {
		dAttempts = float64(s.Initiated - h.prev.Initiated)
		dTimeouts = float64(s.Timeouts - h.prev.Timeouts)
		dDeclined = float64(s.Declined - h.prev.Declined)
	}
	enough := h.havePrev && dAttempts >= float64(h.cfg.LossMinAttempts)

	// exchange_loss_spike: a burst of failed exchanges, whatever the
	// cause (timeouts or NACKs).
	out[RuleExchangeLossSpike] = enough &&
		(dTimeouts+dDeclined)/dAttempts > h.cfg.LossRatio

	// partition_suspect: failures dominated by silent timeouts, not
	// NACKs — peers that answered nothing at all, the skew a network
	// partition produces (a busy fleet declines, a partitioned one
	// vanishes).
	out[RulePartitionSuspect] = enough &&
		dTimeouts/dAttempts > h.cfg.PartitionTimeoutShare &&
		dTimeouts > h.cfg.PartitionSkew*dDeclined

	return out
}
