package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by metric name.
// Instrument values are read atomically; func-backed metrics are
// evaluated inline, so a scrape observes the fleet as of now.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.snapshot() {
		if m.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(m.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(m.name)
		bw.WriteByte(' ')
		bw.WriteString(m.kind.String())
		bw.WriteByte('\n')
		switch m.kind {
		case kindCounter:
			if m.cvec != nil {
				for _, child := range m.cvec.snapshot() {
					writeLabeled(bw, m.name, m.labelKey, child.label)
					bw.WriteString(strconv.FormatInt(child.value, 10))
					bw.WriteByte('\n')
				}
				continue
			}
			v := int64(0)
			if m.counter != nil {
				v = m.counter.Load()
			} else if m.counterFn != nil {
				v = m.counterFn()
			}
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(v, 10))
			bw.WriteByte('\n')
		case kindGauge:
			if m.gvec != nil {
				for _, child := range m.gvec.snapshot() {
					writeLabeled(bw, m.name, m.labelKey, child.label)
					bw.WriteString(formatFloat(child.value))
					bw.WriteByte('\n')
				}
				continue
			}
			v := 0.0
			if m.gauge != nil {
				v = m.gauge.Load()
			} else if m.gaugeFn != nil {
				v = m.gaugeFn()
			}
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(v))
			bw.WriteByte('\n')
		case kindHistogram:
			var s HistSnapshot
			if m.hist != nil {
				s = m.hist.Snapshot()
			} else if m.histFn != nil {
				s = m.histFn()
			}
			writeHistogram(bw, m.name, s)
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram: cumulative le-labelled buckets,
// then _sum and _count.
func writeHistogram(bw *bufio.Writer, name string, s HistSnapshot) {
	cum := int64(0)
	for i, bound := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		bw.WriteString(name)
		bw.WriteString(`_bucket{le="`)
		bw.WriteString(formatFloat(bound))
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	if n := len(s.Counts); n > 0 {
		cum += s.Counts[n-1]
	}
	bw.WriteString(name)
	bw.WriteString(`_bucket{le="+Inf"} `)
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_sum ")
	bw.WriteString(formatFloat(s.Sum))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count ")
	bw.WriteString(strconv.FormatInt(s.Count, 10))
	bw.WriteByte('\n')
}

// writeLabeled writes `name{key="value"} ` with the label value
// escaped per the text format.
func writeLabeled(bw *bufio.Writer, name, key, value string) {
	bw.WriteString(name)
	bw.WriteByte('{')
	bw.WriteString(key)
	bw.WriteString(`="`)
	bw.WriteString(escapeLabel(value))
	bw.WriteString(`"} `)
}

// formatFloat renders a value the way Prometheus clients expect.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, quotes and newlines in a label
// value per the text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
