package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("agg_exchanges_total", "Exchanges attempted.").Add(7)
	r.Gauge("agg_mean", "Current mean estimate.").Set(12.5)
	h := r.Histogram("agg_rtt_seconds", "Round trips.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)
	r.CounterFunc("agg_fleet_total", "Scrape-time sum.", func() int64 { return 41 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP agg_exchanges_total Exchanges attempted.
# TYPE agg_exchanges_total counter
agg_exchanges_total 7
# HELP agg_fleet_total Scrape-time sum.
# TYPE agg_fleet_total counter
agg_fleet_total 41
# HELP agg_mean Current mean estimate.
# TYPE agg_mean gauge
agg_mean 12.5
# HELP agg_rtt_seconds Round trips.
# TYPE agg_rtt_seconds histogram
agg_rtt_seconds_bucket{le="0.001"} 1
agg_rtt_seconds_bucket{le="0.01"} 2
agg_rtt_seconds_bucket{le="+Inf"} 3
agg_rtt_seconds_sum 5.0025
agg_rtt_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("export mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusSpecialFloats(t *testing.T) {
	if got := formatFloat(0.25); got != "0.25" {
		t.Errorf("formatFloat(0.25) = %q", got)
	}
	r := NewRegistry()
	r.GaugeFunc("agg_nan", "", func() float64 { return nan() })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "agg_nan NaN") {
		t.Errorf("NaN not rendered: %s", sb.String())
	}
}

func nan() float64 { var z float64; return z / z }

// TestConcurrentScrape races scrapes against hot-path updates; run with
// -race this proves a scrape never tears or contends with the protocol.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("agg_busy_total", "")
	h := r.Histogram("agg_busy_seconds", "", RTTBuckets)
	g := r.Gauge("agg_busy_gauge", "")
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					c.Inc()
					g.Set(1.5)
					h.Observe(0.002)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("agg_served_total", "help").Add(3)
	ring := NewTraceRing(8)
	ring.Record(TraceEvent{Node: "a", Peer: "b", Kind: TraceAbsorb, Seq: 9})
	srv, err := Serve("127.0.0.1:0", reg, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "agg_served_total 3") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/debug/trace"); code != http.StatusOK || !strings.Contains(body, `"absorb"`) {
		t.Errorf("/debug/trace: code %d body %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}

	// Tracing off → 404, not a panic.
	srv2, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/trace", srv2.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/trace without ring: code %d, want 404", resp.StatusCode)
	}
}
