package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("agg_exchanges_total", "Exchanges attempted.").Add(7)
	r.Gauge("agg_mean", "Current mean estimate.").Set(12.5)
	h := r.Histogram("agg_rtt_seconds", "Round trips.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)
	r.CounterFunc("agg_fleet_total", "Scrape-time sum.", func() int64 { return 41 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP agg_exchanges_total Exchanges attempted.
# TYPE agg_exchanges_total counter
agg_exchanges_total 7
# HELP agg_fleet_total Scrape-time sum.
# TYPE agg_fleet_total counter
agg_fleet_total 41
# HELP agg_mean Current mean estimate.
# TYPE agg_mean gauge
agg_mean 12.5
# HELP agg_rtt_seconds Round trips.
# TYPE agg_rtt_seconds histogram
agg_rtt_seconds_bucket{le="0.001"} 1
agg_rtt_seconds_bucket{le="0.01"} 2
agg_rtt_seconds_bucket{le="+Inf"} 3
agg_rtt_seconds_sum 5.0025
agg_rtt_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("export mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusSpecialFloats(t *testing.T) {
	if got := formatFloat(0.25); got != "0.25" {
		t.Errorf("formatFloat(0.25) = %q", got)
	}
	r := NewRegistry()
	r.GaugeFunc("agg_nan", "", func() float64 { return nan() })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "agg_nan NaN") {
		t.Errorf("NaN not rendered: %s", sb.String())
	}
}

func nan() float64 { var z float64; return z / z }

// TestConcurrentScrape races scrapes against hot-path updates; run with
// -race this proves a scrape never tears or contends with the protocol.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("agg_busy_total", "")
	h := r.Histogram("agg_busy_seconds", "", RTTBuckets)
	g := r.Gauge("agg_busy_gauge", "")
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					c.Inc()
					g.Set(1.5)
					h.Observe(0.002)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// TestServeEndpoints drives the whole telemetry surface end to end:
// populated trace ring and timeline → HTTP GET → decode JSON → assert
// the stitched span and flight-recorder fields, plus the read-only
// method guard.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("agg_served_total", "help").Add(3)
	ring := NewTraceRing(8)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	// One complete cross-node exchange sharing one XID.
	ring.Record(TraceEvent{At: base, Node: "a", Peer: "b", Kind: TraceInitiate, Seq: 9, Epoch: 2, XID: 0xabc})
	ring.Record(TraceEvent{At: base.Add(time.Millisecond), Node: "b", Peer: "a", Kind: TraceServed, Seq: 9, Epoch: 2, XID: 0xabc})
	ring.Record(TraceEvent{At: base.Add(2 * time.Millisecond), Node: "a", Peer: "b", Kind: TraceAbsorb, Seq: 9, Epoch: 2, XID: 0xabc})
	timeline := NewTimeline(16)
	timeline.Record(TimelineEntry{Cycle: 7, Epoch: 1, Alive: 48, Participating: 48,
		TrueMean: 10, MeanEstimate: 10.2, EstimateStdDev: 0.4, RelError: 0.02,
		RhoHat: 0.31, Alerts: []string{RuleConvergenceStall}})
	srv, err := Serve("127.0.0.1:0", reg, ring, timeline)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "agg_served_total 3") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}

	code, body := get("/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace: code %d body %q", code, body)
	}
	var dump struct {
		Total    uint64       `json:"total"`
		Retained int          `json:"retained"`
		Spans    []Span       `json:"spans"`
		Events   []TraceEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/trace not JSON: %v\n%s", err, body)
	}
	if dump.Total != 3 || dump.Retained != 3 || len(dump.Events) != 3 {
		t.Errorf("trace dump counts = %d/%d/%d events, want 3/3/3", dump.Total, dump.Retained, len(dump.Events))
	}
	if len(dump.Spans) != 1 {
		t.Fatalf("stitched spans = %d, want 1\n%s", len(dump.Spans), body)
	}
	sp := dump.Spans[0]
	if sp.XID != 0xabc || sp.Outcome != "completed" || sp.Initiator != "a" || sp.Responder != "b" {
		t.Errorf("span = %+v, want completed a→b with xid 0xabc", sp)
	}
	if sp.RTTSeconds != 0.002 || sp.OneWayDelaySeconds != 0.001 {
		t.Errorf("span delays rtt=%g one-way=%g, want 0.002/0.001", sp.RTTSeconds, sp.OneWayDelaySeconds)
	}

	code, body = get("/debug/timeline")
	if code != http.StatusOK {
		t.Fatalf("/debug/timeline: code %d body %q", code, body)
	}
	var tl struct {
		Total    uint64          `json:"total"`
		Retained int             `json:"retained"`
		Entries  []TimelineEntry `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatalf("/debug/timeline not JSON: %v\n%s", err, body)
	}
	if tl.Total != 1 || len(tl.Entries) != 1 {
		t.Fatalf("timeline dump = %d total, %d entries, want 1/1", tl.Total, len(tl.Entries))
	}
	e := tl.Entries[0]
	if e.Cycle != 7 || e.Alive != 48 || e.RhoHat != 0.31 ||
		len(e.Alerts) != 1 || e.Alerts[0] != RuleConvergenceStall {
		t.Errorf("timeline entry = %+v", e)
	}

	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}

	// The scrape surfaces are read-only: non-GET gets 405.
	for _, path := range []string{"/metrics", "/debug/trace", "/debug/timeline"} {
		resp, err := http.Post(fmt.Sprintf("http://%s%s", srv.Addr(), path), "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: code %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("POST %s: Allow = %q", path, allow)
		}
	}

	// Tracing and flight recorder off → 404, not a panic.
	srv2, err := Serve("127.0.0.1:0", NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for _, path := range []string{"/debug/trace", "/debug/timeline"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv2.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without ring: code %d, want 404", path, resp.StatusCode)
		}
	}
}
