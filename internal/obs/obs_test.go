package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("agg_test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("agg_test_gauge", "help")
	g.Set(2.5)
	if got := g.Load(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	g.Set(-1)
	if got := g.Load(); got != -1 {
		t.Errorf("gauge after reset = %g, want -1", got)
	}
}

func TestRegistryIdempotentInstruments(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("agg_shared_total", "help")
	b := r.Counter("agg_shared_total", "other help")
	if a != b {
		t.Error("re-registering a counter returned a different instrument")
	}
	h1 := r.Histogram("agg_shared_hist", "help", RTTBuckets)
	h2 := r.Histogram("agg_shared_hist", "help", FrameBytesBuckets)
	if h1 != h2 {
		t.Error("re-registering a histogram returned a different instrument")
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("agg_clash", "help")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter name did not panic")
		}
	}()
	r.Gauge("agg_clash", "help")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "1leading", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", name)
				}
			}()
			NewRegistry().Counter(name, "help")
		}()
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// Prometheus buckets have inclusive upper bounds: v <= bound.
	for _, v := range []float64{0.5, 1} {
		h.Observe(v) // bucket le=1
	}
	h.Observe(1.5) // le=2
	h.Observe(2)   // le=2 (inclusive)
	h.Observe(4)   // le=4 (inclusive)
	h.Observe(4.1) // +Inf
	s := h.Snapshot()
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if wantSum := 0.5 + 1 + 1.5 + 2 + 4 + 4.1; s.Sum != wantSum {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}
}

func TestHistogramUnsortedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	NewHistogram([]float64{1, 1, 2})
}

func TestHistSnapshotMerge(t *testing.T) {
	h1 := NewHistogram([]float64{1, 2})
	h2 := NewHistogram([]float64{1, 2})
	h1.Observe(0.5)
	h2.Observe(1.5)
	h2.Observe(10)
	m := h1.Snapshot().Merge(h2.Snapshot())
	if m.Count != 3 || m.Counts[0] != 1 || m.Counts[1] != 1 || m.Counts[2] != 1 {
		t.Errorf("merge = %+v", m)
	}
	if m.Sum != 12 {
		t.Errorf("merged sum = %g, want 12", m.Sum)
	}
	// Mismatched layouts refuse to merge.
	other := NewHistogram([]float64{5}).Snapshot()
	before := h1.Snapshot()
	if got := before.Merge(other); got.Count != before.Count {
		t.Error("mismatched-layout merge changed the snapshot")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(RTTBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != workers*per {
		t.Errorf("bucket sum = %d, want %d", bucketSum, workers*per)
	}
}

// TestHotPathAllocs is the zero-allocation guard on the counter hot
// path: one exchange is about a microsecond of work, so a single heap
// allocation per metric event would dominate the protocol's cost.
func TestHotPathAllocs(t *testing.T) {
	c := &Counter{}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f times per call", n)
	}
	g := &Gauge{}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3.14) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f times per call", n)
	}
	h := NewHistogram(RTTBuckets)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f times per call", n)
	}
	ring := NewTraceRing(64)
	ev := TraceEvent{Node: "n", Peer: "p", Kind: TraceInitiate, Seq: 1, Epoch: 2}
	// A pre-stamped event must not allocate either (time.Now stamping is
	// only for zero At values).
	ev.At = ev.At.AddDate(2020, 0, 0)
	if n := testing.AllocsPerRun(1000, func() { ring.Record(ev) }); n != 0 {
		t.Errorf("TraceRing.Record allocates %.1f times per call", n)
	}
}
