package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceRingWraparound(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 1; i <= 10; i++ {
		ring.Record(TraceEvent{Node: "n", Kind: TraceInitiate, Seq: uint64(i)})
	}
	if got := ring.Total(); got != 10 {
		t.Errorf("total = %d, want 10", got)
	}
	events := ring.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	// The newest 4, oldest first: seq 7, 8, 9, 10.
	for i, want := range []uint64{7, 8, 9, 10} {
		if events[i].Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, events[i].Seq, want)
		}
	}
}

func TestTraceRingPartiallyFilled(t *testing.T) {
	ring := NewTraceRing(8)
	ring.Record(TraceEvent{Seq: 1})
	ring.Record(TraceEvent{Seq: 2})
	events := ring.Events()
	if len(events) != 2 || events[0].Seq != 1 || events[1].Seq != 2 {
		t.Errorf("events = %+v", events)
	}
}

func TestTraceRingZeroAtStamped(t *testing.T) {
	ring := NewTraceRing(1)
	ring.Record(TraceEvent{Seq: 1})
	if ring.Events()[0].At.IsZero() {
		t.Error("zero At not stamped with the record time")
	}
}

func TestNilTraceRingSafe(t *testing.T) {
	var ring *TraceRing
	ring.Record(TraceEvent{Seq: 1}) // must not panic
	if ring.Events() != nil || ring.Total() != 0 {
		t.Error("nil ring not empty")
	}
}

func TestTraceRingMinCapacity(t *testing.T) {
	ring := NewTraceRing(0)
	ring.Record(TraceEvent{Seq: 1})
	ring.Record(TraceEvent{Seq: 2})
	events := ring.Events()
	if len(events) != 1 || events[0].Seq != 2 {
		t.Errorf("events = %+v, want just seq 2", events)
	}
}

func TestTraceWriteJSON(t *testing.T) {
	ring := NewTraceRing(2)
	ring.Record(TraceEvent{Node: "a", Peer: "b", Kind: TraceTimeout, Seq: 3, Epoch: 5})
	var sb strings.Builder
	if err := ring.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Total    uint64 `json:"total"`
		Retained int    `json:"retained"`
		Events   []struct {
			Kind  string `json:"kind"`
			Seq   uint64 `json:"seq"`
			Epoch uint64 `json:"epoch"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &dump); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if dump.Total != 1 || dump.Retained != 1 || len(dump.Events) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	if e := dump.Events[0]; e.Kind != "timeout" || e.Seq != 3 || e.Epoch != 5 {
		t.Errorf("event = %+v", e)
	}
}

func TestTraceKindNames(t *testing.T) {
	for k := TraceInitiate; k <= TraceDecodeError; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if TraceKind(0).String() != "unknown" || TraceKind(200).String() != "unknown" {
		t.Error("out-of-range kinds must be unknown")
	}
}
