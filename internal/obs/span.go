package obs

import (
	"sort"
	"time"
)

// Span is one exchange reconstructed from its trace events: every
// event that carried the same non-zero exchange ID, stitched into the
// initiate → served → absorb/timeout causal chain. When the events of
// both parties land in one ring (a shared per-process ring, or the
// UDP supervisor's merged fleet ring) the span crosses nodes and
// processes, which is what makes loss classification possible: a
// timeout with a matching served event is a lost reply, a timeout
// with nothing on the far side is a lost (or filtered) request.
type Span struct {
	// XID is the exchange identifier shared by every event.
	XID uint64 `json:"xid"`
	// Initiator and Responder are the two parties, when identifiable
	// from the events (the initiator from its initiate event, the
	// responder from its served/refusal event).
	Initiator string `json:"initiator,omitempty"`
	Responder string `json:"responder,omitempty"`
	// Seq and Epoch of the exchange, from the first event carrying them.
	Seq   uint64 `json:"seq,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	// Outcome classifies the exchange:
	//
	//	completed    — the initiator absorbed a reply
	//	declined     — the responder NACKed (busy or joining)
	//	stale        — the reply arrived but was dropped as stale
	//	reply-lost   — the responder served/NACKed but the initiator
	//	               timed out: the reply never made it back
	//	request-lost — the initiator timed out and the responder never
	//	               saw the request
	//	orphan       — responder-side events with no initiate in the
	//	               ring (the initiator's events were overwritten or
	//	               live in an unmerged ring)
	//	pending      — an initiate with no outcome yet
	Outcome string `json:"outcome"`
	// Start and End bound the span in time (first and last event).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// OneWayDelaySeconds estimates request propagation: served.At −
	// initiate.At across the two parties' clocks (loopback and
	// NTP-synced hosts make this meaningful; wildly skewed clocks can
	// even make it negative, which is itself a useful signal). Zero
	// when either side is missing.
	OneWayDelaySeconds float64 `json:"one_way_delay_seconds,omitempty"`
	// RTTSeconds is the initiator-local round trip: absorb (or
	// declined) minus initiate — one clock, so always trustworthy.
	// Zero when the exchange has no initiator-side reply event.
	RTTSeconds float64 `json:"rtt_seconds,omitempty"`
	// Events are the span's events, oldest first.
	Events []TraceEvent `json:"events"`
}

// StitchSpans groups events by non-zero exchange ID and reconstructs
// one Span per exchange, sorted by start time. Events without an XID
// (pre-v3 peers, membership gossip, decode errors) are skipped; the
// raw event list in a trace dump still carries them.
func StitchSpans(events []TraceEvent) []Span {
	byXID := make(map[uint64][]TraceEvent)
	order := make([]uint64, 0)
	for _, ev := range events {
		if ev.XID == 0 {
			continue
		}
		if _, seen := byXID[ev.XID]; !seen {
			order = append(order, ev.XID)
		}
		byXID[ev.XID] = append(byXID[ev.XID], ev)
	}
	spans := make([]Span, 0, len(order))
	for _, xid := range order {
		spans = append(spans, stitchOne(xid, byXID[xid]))
	}
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].XID < spans[j].XID
	})
	return spans
}

// stitchOne builds the span for one exchange's events.
func stitchOne(xid uint64, evs []TraceEvent) Span {
	sort.Slice(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
	sp := Span{XID: xid, Events: evs, Start: evs[0].At, End: evs[len(evs)-1].At}
	var initiate, served, absorb, timeout, declined, stale *TraceEvent
	var refused bool
	for i := range evs {
		ev := &evs[i]
		if sp.Seq == 0 {
			sp.Seq = ev.Seq
		}
		if sp.Epoch == 0 {
			sp.Epoch = ev.Epoch
		}
		switch ev.Kind {
		case TraceInitiate:
			if initiate == nil {
				initiate = ev
				sp.Initiator = ev.Node
			}
		case TraceServed:
			if served == nil {
				served = ev
				sp.Responder = ev.Node
			}
		case TraceRefusedBusy, TraceRefusedJoining:
			refused = true
			if sp.Responder == "" {
				sp.Responder = ev.Node
			}
		case TraceAbsorb:
			if absorb == nil {
				absorb = ev
			}
		case TraceTimeout:
			if timeout == nil {
				timeout = ev
			}
		case TraceDeclined:
			if declined == nil {
				declined = ev
			}
		case TraceStaleDrop:
			if stale == nil {
				stale = ev
			}
		}
	}
	responderSaw := served != nil || refused
	switch {
	case absorb != nil:
		sp.Outcome = "completed"
	case declined != nil:
		sp.Outcome = "declined"
	case stale != nil && initiate != nil:
		sp.Outcome = "stale"
	case timeout != nil && responderSaw:
		sp.Outcome = "reply-lost"
	case timeout != nil:
		sp.Outcome = "request-lost"
	case initiate == nil:
		sp.Outcome = "orphan"
	default:
		sp.Outcome = "pending"
	}
	if initiate != nil && served != nil {
		sp.OneWayDelaySeconds = served.At.Sub(initiate.At).Seconds()
	}
	if initiate != nil {
		if absorb != nil {
			sp.RTTSeconds = absorb.At.Sub(initiate.At).Seconds()
		} else if declined != nil {
			sp.RTTSeconds = declined.At.Sub(initiate.At).Seconds()
		}
	}
	return sp
}
