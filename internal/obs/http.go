package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry in the Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The response is already partially written; nothing to do
			// but drop the connection.
			return
		}
	})
}

// TraceHandler serves a trace ring as JSON (404 when tracing is off).
func TraceHandler(t *TraceRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled (no trace ring attached)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteJSON(w)
	})
}

// Server is one live telemetry endpoint: /metrics (Prometheus text),
// /debug/trace (exchange trace ring JSON) and /debug/pprof/* for the
// runtime profiles. Create with Serve, stop with Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry HTTP server on addr ("host:port"; ":0"
// picks a free port — read the resolved address back with Addr). trace
// may be nil; /debug/trace then reports tracing disabled.
func Serve(addr string, reg *Registry, trace *TraceRing) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %q: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/debug/trace", TraceHandler(trace))
	// net/http/pprof self-registers on http.DefaultServeMux at import;
	// wire its handlers onto this private mux explicitly so the
	// telemetry port is the only place they are exposed.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
