package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry in the Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The response is already partially written; nothing to do
			// but drop the connection.
			return
		}
	})
}

// TraceHandler serves a trace ring as JSON — raw events plus stitched
// spans (404 when tracing is off).
func TraceHandler(t *TraceRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled (no trace ring attached)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteJSON(w)
	})
}

// TimelineHandler serves the per-cycle flight recorder as JSON (404
// when no timeline is attached).
func TimelineHandler(t *Timeline) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t == nil {
			http.Error(w, "flight recorder disabled (no timeline attached)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteJSON(w)
	})
}

// getOnly rejects non-GET/HEAD methods with 405: the telemetry
// surfaces are read-only and a stray POST should say so rather than
// render a scrape.
func getOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h.ServeHTTP(w, req)
	})
}

// Server is one live telemetry endpoint: /metrics (Prometheus text),
// /debug/trace (stitched exchange spans + raw trace-ring JSON),
// /debug/timeline (per-cycle flight recorder JSON) and /debug/pprof/*
// for the runtime profiles. Create with Serve, stop with Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// closeDrain bounds how long Close waits for in-flight scrapes.
const closeDrain = 2 * time.Second

// Serve starts the telemetry HTTP server on addr ("host:port"; ":0"
// picks a free port — read the resolved address back with Addr).
// trace and timeline may be nil; the corresponding endpoint then
// reports itself disabled with a 404.
func Serve(addr string, reg *Registry, trace *TraceRing, timeline *Timeline) (*Server, error) {
	return ServeWith(addr, reg, trace, timeline, nil)
}

// ServeWith is Serve with extra routes: mount (may be nil) registers
// additional handlers on the server's mux before it starts listening —
// how the serving daemon exposes its /v1 API alongside /metrics,
// /debug/trace and /debug/timeline on one listener. Mounted handlers
// do their own method gating; only the telemetry surfaces are
// restricted to GET/HEAD.
func ServeWith(addr string, reg *Registry, trace *TraceRing, timeline *Timeline, mount func(*http.ServeMux)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %q: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", getOnly(Handler(reg)))
	mux.Handle("/debug/trace", getOnly(TraceHandler(trace)))
	mux.Handle("/debug/timeline", getOnly(TimelineHandler(timeline)))
	// net/http/pprof self-registers on http.DefaultServeMux at import;
	// wire its handlers onto this private mux explicitly so the
	// telemetry port is the only place they are exposed.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if mount != nil {
		mount(mux)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, draining in-flight scrapes for up to a
// short deadline before cutting remaining connections: a Prometheus
// scrape racing a scenario teardown gets its response instead of a
// reset.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeDrain)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
