package obs

import (
	"testing"
	"time"
)

// at offsets a fixed base instant by milliseconds.
func at(ms int) time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).Add(time.Duration(ms) * time.Millisecond)
}

func TestStitchSpansOutcomes(t *testing.T) {
	events := []TraceEvent{
		// XID 1: complete exchange across two nodes.
		{At: at(0), Node: "a", Peer: "b", Kind: TraceInitiate, Seq: 1, Epoch: 3, XID: 1},
		{At: at(2), Node: "b", Peer: "a", Kind: TraceServed, Seq: 1, Epoch: 3, XID: 1},
		{At: at(5), Node: "a", Peer: "b", Kind: TraceAbsorb, Seq: 1, Epoch: 3, XID: 1},
		// XID 2: the responder never saw the request.
		{At: at(10), Node: "a", Peer: "c", Kind: TraceInitiate, Seq: 2, XID: 2},
		{At: at(40), Node: "a", Peer: "c", Kind: TraceTimeout, Seq: 2, XID: 2},
		// XID 3: served but the reply vanished.
		{At: at(20), Node: "a", Peer: "b", Kind: TraceInitiate, Seq: 3, XID: 3},
		{At: at(21), Node: "b", Peer: "a", Kind: TraceServed, Seq: 3, XID: 3},
		{At: at(50), Node: "a", Peer: "b", Kind: TraceTimeout, Seq: 3, XID: 3},
		// XID 4: responder-side events only (initiator ring unmerged).
		{At: at(30), Node: "b", Peer: "d", Kind: TraceServed, Seq: 4, XID: 4},
		// XID 5: busy NACK.
		{At: at(35), Node: "a", Peer: "b", Kind: TraceInitiate, Seq: 5, XID: 5},
		{At: at(36), Node: "b", Peer: "a", Kind: TraceRefusedBusy, Seq: 5, XID: 5},
		{At: at(38), Node: "a", Peer: "b", Kind: TraceDeclined, Seq: 5, XID: 5},
		// No XID: pre-v3 peer, must not stitch.
		{At: at(1), Node: "z", Kind: TraceInitiate, Seq: 9},
	}
	spans := StitchSpans(events)
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	outcomes := map[uint64]string{}
	for _, sp := range spans {
		outcomes[sp.XID] = sp.Outcome
	}
	want := map[uint64]string{
		1: "completed", 2: "request-lost", 3: "reply-lost", 4: "orphan", 5: "declined",
	}
	for xid, outcome := range want {
		if outcomes[xid] != outcome {
			t.Errorf("xid %d outcome = %q, want %q", xid, outcomes[xid], outcome)
		}
	}
	// Spans come back ordered by start time: 1, 2, 3, 4, 5.
	for i, xid := range []uint64{1, 2, 3, 4, 5} {
		if spans[i].XID != xid {
			t.Fatalf("span order = %v...", spans[i].XID)
		}
	}
	one := spans[0]
	if one.Initiator != "a" || one.Responder != "b" || one.Seq != 1 || one.Epoch != 3 {
		t.Errorf("span 1 parties = %+v", one)
	}
	if one.OneWayDelaySeconds != 0.002 || one.RTTSeconds != 0.005 {
		t.Errorf("span 1 delays = %g/%g, want 0.002/0.005", one.OneWayDelaySeconds, one.RTTSeconds)
	}
	if spans[4].RTTSeconds != 0.003 {
		t.Errorf("declined span RTT = %g, want 0.003 (initiate→declined)", spans[4].RTTSeconds)
	}
	if spans[1].OneWayDelaySeconds != 0 {
		t.Errorf("request-lost span has a one-way delay: %g", spans[1].OneWayDelaySeconds)
	}
}

func TestStitchSpansPending(t *testing.T) {
	spans := StitchSpans([]TraceEvent{
		{At: at(0), Node: "a", Kind: TraceInitiate, Seq: 1, XID: 7},
	})
	if len(spans) != 1 || spans[0].Outcome != "pending" {
		t.Fatalf("spans = %+v, want one pending", spans)
	}
}

func TestTraceRingEventsSince(t *testing.T) {
	ring := NewTraceRing(4)
	rec := func(seq uint64) {
		ring.Record(TraceEvent{At: at(int(seq)), Node: "a", Kind: TraceInitiate, Seq: seq})
	}
	rec(1)
	rec(2)
	batch, cursor := ring.EventsSince(0)
	if len(batch) != 2 || batch[0].Seq != 1 || batch[1].Seq != 2 || cursor != 2 {
		t.Fatalf("first pull = %d events cursor %d", len(batch), cursor)
	}
	// Nothing new: empty batch, cursor unchanged.
	batch, cursor = ring.EventsSince(cursor)
	if len(batch) != 0 || cursor != 2 {
		t.Fatalf("idle pull = %d events cursor %d", len(batch), cursor)
	}
	// Overflow the ring: events 3..8 recorded, only 5..8 retained. The
	// pull returns what survived and the cursor catches up — overwritten
	// events are silently lost, the ring's retention contract.
	for seq := uint64(3); seq <= 8; seq++ {
		rec(seq)
	}
	batch, cursor = ring.EventsSince(cursor)
	if len(batch) != 4 || cursor != 8 {
		t.Fatalf("overflow pull = %d events cursor %d, want 4 events cursor 8", len(batch), cursor)
	}
	for i, want := range []uint64{5, 6, 7, 8} {
		if batch[i].Seq != want {
			t.Errorf("overflow batch[%d].Seq = %d, want %d", i, batch[i].Seq, want)
		}
	}
	// Nil ring: no-ops.
	var nilRing *TraceRing
	if b, c := nilRing.EventsSince(3); b != nil || c != 3 {
		t.Errorf("nil ring pull = %v cursor %d", b, c)
	}
}

func TestTimelineRing(t *testing.T) {
	tl := NewTimeline(3)
	for c := 1; c <= 5; c++ {
		tl.Record(TimelineEntry{At: at(c), Cycle: c, Alive: 10 * c})
	}
	if tl.Total() != 5 {
		t.Fatalf("total = %d, want 5", tl.Total())
	}
	entries := tl.Entries()
	if len(entries) != 3 {
		t.Fatalf("retained = %d, want 3", len(entries))
	}
	for i, want := range []int{3, 4, 5} {
		if entries[i].Cycle != want {
			t.Errorf("entries[%d].Cycle = %d, want %d", i, entries[i].Cycle, want)
		}
	}
	// Nil timeline: records are ignored, reads are empty.
	var nilTL *Timeline
	nilTL.Record(TimelineEntry{Cycle: 1})
	if nilTL.Entries() != nil || nilTL.Total() != 0 {
		t.Error("nil timeline not inert")
	}
}
