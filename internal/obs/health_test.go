package obs

import (
	"strings"
	"testing"
)

// export renders the registry for substring assertions.
func export(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestHealthSeriesExistBeforeFiring(t *testing.T) {
	reg := NewRegistry()
	NewHealth(reg, HealthConfig{})
	out := export(t, reg)
	for _, rule := range healthRuleNames {
		if !strings.Contains(out, `agg_alerts_total{rule="`+rule+`"} 0`) {
			t.Errorf("agg_alerts_total{rule=%q} not exported at 0:\n%s", rule, out)
		}
		if !strings.Contains(out, `agg_alert_active{rule="`+rule+`"} 0`) {
			t.Errorf("agg_alert_active{rule=%q} not exported at 0:\n%s", rule, out)
		}
	}
}

func TestHealthStallFiresAfterStreakAndClears(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(reg, HealthConfig{StallCycles: 3})
	stalled := HealthSample{
		MeanEstimate: 10, EstimateStdDev: 2, RhoHat: 0.95, TheoryRho: 0.303,
	}
	for i := 1; i <= 2; i++ {
		stalled.Cycle = i
		if active := h.Eval(stalled); len(active) != 0 {
			t.Fatalf("cycle %d: fired before the streak: %v", i, active)
		}
	}
	stalled.Cycle = 3
	active := h.Eval(stalled)
	if len(active) != 1 || active[0] != RuleConvergenceStall {
		t.Fatalf("cycle 3 active = %v, want [convergence_stall]", active)
	}
	out := export(t, reg)
	if !strings.Contains(out, `agg_alerts_total{rule="convergence_stall"} 1`) {
		t.Errorf("firing not counted:\n%s", out)
	}
	if !strings.Contains(out, `agg_alert_active{rule="convergence_stall"} 1`) {
		t.Errorf("active gauge not set:\n%s", out)
	}
	// One clean cycle clears it; the firing counter keeps its history.
	recovered := stalled
	recovered.Cycle, recovered.RhoHat = 4, 0.2
	if active := h.Eval(recovered); len(active) != 0 {
		t.Fatalf("still active after clean cycle: %v", active)
	}
	out = export(t, reg)
	if !strings.Contains(out, `agg_alerts_total{rule="convergence_stall"} 1`) {
		t.Errorf("counter lost its history:\n%s", out)
	}
	if !strings.Contains(out, `agg_alert_active{rule="convergence_stall"} 0`) {
		t.Errorf("active gauge not cleared:\n%s", out)
	}
}

func TestHealthStallQuietOnceConverged(t *testing.T) {
	h := NewHealth(nil, HealthConfig{StallCycles: 1})
	// ρ̂ above threshold but the spread is numerical noise — a converged
	// fleet must not page.
	s := HealthSample{MeanEstimate: 10, EstimateStdDev: 1e-9, RhoHat: 2, TheoryRho: 0.303}
	if active := h.Eval(s); len(active) != 0 {
		t.Errorf("stall fired on a converged fleet: %v", active)
	}
}

func TestHealthLossSpikeAndPartitionSuspect(t *testing.T) {
	h := NewHealth(nil, HealthConfig{LossCycles: 2, PartitionCycles: 2})
	// Cycle 1 just primes the deltas.
	s := HealthSample{Cycle: 1, Initiated: 10, Timeouts: 0, Declined: 0}
	if active := h.Eval(s); len(active) != 0 {
		t.Fatalf("fired without a previous sample: %v", active)
	}
	// Two cycles of 8/10 attempts timing out with no NACKs: both the
	// loss-spike and the partition-shaped skew rule must fire.
	for i := 2; i <= 3; i++ {
		s.Cycle = i
		s.Initiated += 10
		s.Timeouts += 8
		active := h.Eval(s)
		if i == 2 && len(active) != 0 {
			t.Fatalf("cycle 2: fired before the streak: %v", active)
		}
		if i == 3 {
			want := []string{RuleExchangeLossSpike, RulePartitionSuspect}
			if len(active) != 2 || active[0] != want[0] || active[1] != want[1] {
				t.Fatalf("cycle 3 active = %v, want %v", active, want)
			}
		}
	}
	// NACK-dominated failures keep firing the loss spike but not the
	// partition rule: busy peers answered, they are not unreachable.
	s.Cycle, s.Initiated, s.Declined = 4, s.Initiated+10, s.Declined+8
	s.Cycle, s.Initiated, s.Declined = 5, s.Initiated+10, s.Declined+8
	active := h.Eval(s)
	for _, name := range active {
		if name == RulePartitionSuspect {
			t.Errorf("partition_suspect active on NACK-dominated losses: %v", active)
		}
	}
}

func TestHealthMassDrift(t *testing.T) {
	h := NewHealth(nil, HealthConfig{DriftCycles: 2})
	s := HealthSample{TrueMean: 10, MeanEstimate: 14, RelError: 0.4}
	s.Cycle = 1
	if active := h.Eval(s); len(active) != 0 {
		t.Fatalf("drift fired before the streak: %v", active)
	}
	s.Cycle = 2
	if active := h.Eval(s); len(active) != 1 || active[0] != RuleMassDrift {
		t.Fatalf("cycle 2 active = %v, want [mass_drift]", active)
	}
	s.Cycle, s.RelError = 3, 0.01
	if active := h.Eval(s); len(active) != 0 {
		t.Fatalf("drift stuck after recovery: %v", active)
	}
}

func TestHealthLossSpikeIgnoresThinSamples(t *testing.T) {
	h := NewHealth(nil, HealthConfig{LossCycles: 1, LossMinAttempts: 8})
	h.Eval(HealthSample{Cycle: 1})
	// 3 attempts, all failed: ratio 1.0 but far below the attempt floor —
	// too thin to mean anything.
	s := HealthSample{Cycle: 2, Initiated: 3, Timeouts: 3}
	if active := h.Eval(s); len(active) != 0 {
		t.Errorf("loss spike fired on %d attempts: %v", s.Initiated, active)
	}
}
