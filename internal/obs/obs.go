// Package obs is the live telemetry substrate of the aggregation
// runtime: a zero-allocation metrics registry (atomic counters, gauges
// and fixed-bucket histograms) with a Prometheus text-format exporter,
// an HTTP server wiring /metrics, /debug/trace and net/http/pprof, and
// a bounded ring of structured exchange-lifecycle trace events.
//
// The registry is deliberately minimal: metric instruments are plain
// atomics so the protocol hot paths (one exchange is ~1µs of work) pay
// one uncontended atomic add per event and never allocate. Aggregation
// across many instruments — a worker process summing per-node counters,
// a supervisor summing per-worker snapshots — happens at scrape time
// through func-backed metrics, not on the hot path.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exported value to stay
// monotone; the counter does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits
// behind one atomic word. The zero value is ready to use and reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observation counts per bucket
// plus a running sum and count, all atomics. Buckets follow the
// Prometheus convention: bucket i counts observations v <= Bounds[i]
// (inclusive upper bounds), and one implicit +Inf bucket catches the
// rest. Create with NewHistogram or Registry.Histogram.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// RTTBuckets are the default bounds (seconds) for exchange round-trip
// latency: loopback exchanges land in the sub-millisecond buckets, WAN
// deployments in the tens-of-milliseconds range, and anything beyond
// one second is indistinguishable from the protocol's own timeout.
var RTTBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// FrameBytesBuckets are the default bounds for wire-frame sizes: the
// delta-gossip steady state sits around 100 B, full 30-descriptor views
// around 800 B, and COUNT payloads can reach a few KiB.
var FrameBytesBuckets = []float64{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// NewHistogram builds a standalone histogram (not registered anywhere)
// over the given sorted, strictly increasing upper bounds. It panics on
// unsorted bounds — bucket layouts are compile-time decisions.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation. Allocation-free: a short linear scan
// over the bounds (histograms here have ~10 buckets) plus three atomic
// operations.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// HistSnapshot is one consistent-enough read of a histogram, also the
// wire shape worker processes forward to a supervisor. Counts are
// per-bucket (not cumulative) with the +Inf bucket last.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot reads the histogram. Buckets, count and sum are each
// atomically read but not mutually synchronized; under concurrent
// observation the snapshot may be off by in-flight observations, which
// is the usual Prometheus scrape contract.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Merge adds o into s (summing buckets, count and sum) and returns s.
// Both snapshots must share the same bucket layout; mismatched layouts
// return s unchanged — merging them would misattribute counts.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(o.Counts) != len(s.Counts) {
		return s
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return s
}

// CounterVec is a family of counters distinguished by the value of
// one label — the shape of `agg_alerts_total{rule="..."}`. Children
// are created on first use and live forever (label cardinality is
// expected to be a small fixed rule set, not user data).
type CounterVec struct {
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label value,
// registering it (at zero) on first use.
func (v *CounterVec) With(label string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[label]
	if !ok {
		c = &Counter{}
		v.children[label] = c
	}
	return c
}

// labeledInt is one (label value, metric value) pair of a family
// snapshot.
type labeledInt struct {
	label string
	value int64
}

// snapshot returns the children sorted by label value.
func (v *CounterVec) snapshot() []labeledInt {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]labeledInt, 0, len(v.children))
	for label, c := range v.children {
		out = append(out, labeledInt{label, c.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// GaugeVec is a family of gauges distinguished by one label — the
// shape of `agg_alert_active{rule="..."}`.
type GaugeVec struct {
	mu       sync.Mutex
	children map[string]*Gauge
}

// With returns the child gauge for the given label value, registering
// it (at zero) on first use.
func (v *GaugeVec) With(label string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[label]
	if !ok {
		g = &Gauge{}
		v.children[label] = g
	}
	return g
}

// labeledFloat is one (label value, metric value) pair of a family
// snapshot.
type labeledFloat struct {
	label string
	value float64
}

// snapshot returns the children sorted by label value.
func (v *GaugeVec) snapshot() []labeledFloat {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]labeledFloat, 0, len(v.children))
	for label, g := range v.children {
		out = append(out, labeledFloat{label, g.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// metricKind discriminates the registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// metric is one registry entry: an instrument (counter/gauge/histogram)
// or a func-backed view evaluated at scrape time.
type metric struct {
	name, help string
	kind       metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	counterFn func() int64
	gaugeFn   func() float64
	histFn    func() HistSnapshot

	// Labeled families: when set, the entry renders one sample per
	// child under a single HELP/TYPE header.
	labelKey string
	cvec     *CounterVec
	gvec     *GaugeVec
}

// Registry names and exports a set of metrics. All methods are safe for
// concurrent use; the instruments themselves are lock-free.
//
// Instrument registration is idempotent: asking for an already
// registered name of the same kind returns the existing instrument, so
// several executors run in one process can share one registry. Func
// metrics replace a previous func of the same name and kind — a
// supervisor re-running a scenario rebinds the aggregation closure to
// the new fleet. A name collision across kinds panics: it is a
// programming error that would corrupt the exported series.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// validName enforces the Prometheus metric-name charset.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup finds or creates the named slot, enforcing name validity and
// kind consistency. Callers hold r.mu.
func (r *Registry) lookup(name, help string, kind metricKind) (*metric, bool) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s", name, m.kind, kind))
		}
		return m, true
	}
	m := &metric{name: name, help: help, kind: kind}
	r.metrics[name] = m
	return m, false
}

// mustUnlabeled panics if the slot already holds a labeled family —
// one name cannot export both labeled and unlabeled samples.
func (m *metric) mustUnlabeled() {
	if m.cvec != nil || m.gvec != nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a labeled %s family", m.name, m.kind))
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, help, kindCounter)
	m.mustUnlabeled()
	if !existed || m.counter == nil {
		m.counter = &Counter{}
		m.counterFn = nil
	}
	return m.counter
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, help, kindGauge)
	m.mustUnlabeled()
	if !existed || m.gauge == nil {
		m.gauge = &Gauge{}
		m.gaugeFn = nil
	}
	return m.gauge
}

// Histogram returns the named histogram, registering it with the given
// bucket bounds on first use (later calls ignore the bounds and return
// the existing instrument).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, help, kindHistogram)
	if !existed || m.hist == nil {
		m.hist = NewHistogram(bounds)
		m.histFn = nil
	}
	return m.hist
}

// CounterVec returns the named single-label counter family,
// registering it on first use. Re-registering with a different label
// key, or on a name already registered as an unlabeled counter,
// panics: mixing labeled and unlabeled samples of one name would
// corrupt the export.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	if !validName(labelKey) {
		panic(fmt.Sprintf("obs: invalid label key %q for metric %q", labelKey, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, help, kindCounter)
	if existed {
		if m.cvec == nil {
			panic(fmt.Sprintf("obs: metric %q already registered as an unlabeled counter", name))
		}
		if m.labelKey != labelKey {
			panic(fmt.Sprintf("obs: metric %q registered with label %q, requested %q", name, m.labelKey, labelKey))
		}
		return m.cvec
	}
	m.labelKey = labelKey
	m.cvec = &CounterVec{children: make(map[string]*Counter)}
	return m.cvec
}

// GaugeVec returns the named single-label gauge family, registering
// it on first use, with the same consistency rules as CounterVec.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	if !validName(labelKey) {
		panic(fmt.Sprintf("obs: invalid label key %q for metric %q", labelKey, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, existed := r.lookup(name, help, kindGauge)
	if existed {
		if m.gvec == nil {
			panic(fmt.Sprintf("obs: metric %q already registered as an unlabeled gauge", name))
		}
		if m.labelKey != labelKey {
			panic(fmt.Sprintf("obs: metric %q registered with label %q, requested %q", name, m.labelKey, labelKey))
		}
		return m.gvec
	}
	m.labelKey = labelKey
	m.gvec = &GaugeVec{children: make(map[string]*Gauge)}
	return m.gvec
}

// CounterFunc registers (or rebinds) a counter whose value is computed
// at scrape time — the aggregation hook for fleets: the closure sums
// per-node atomic counters, so the hot path never touches the registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.lookup(name, help, kindCounter)
	m.mustUnlabeled()
	m.counter, m.counterFn = nil, fn
}

// GaugeFunc registers (or rebinds) a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.lookup(name, help, kindGauge)
	m.mustUnlabeled()
	m.gauge, m.gaugeFn = nil, fn
}

// HistogramFunc registers (or rebinds) a histogram whose snapshot is
// computed at scrape time — how a supervisor exports the merged
// per-worker RTT histograms it received over the control channel.
func (r *Registry) HistogramFunc(name, help string, fn func() HistSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.lookup(name, help, kindHistogram)
	m.hist, m.histFn = nil, fn
}

// snapshot returns the registered metrics sorted by name, for a
// deterministic export order.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
