package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TimelineEntry is one per-cycle snapshot of a running fleet: the
// flight-recorder row all three scenario executors (and aggnode's
// status loop) record every cycle, so a post-mortem can replay the
// last N cycles — who was alive, how far the estimate was from truth,
// whether convergence was on the theoretical ρ trajectory, and which
// health alerts were active.
type TimelineEntry struct {
	// At is when the snapshot was taken.
	At time.Time `json:"at"`
	// Cycle and Epoch locate the snapshot on the protocol schedule.
	Cycle int    `json:"cycle"`
	Epoch uint64 `json:"epoch"`
	// Alive and Participating count the fleet.
	Alive         int `json:"alive"`
	Participating int `json:"participating"`
	// TrueMean and MeanEstimate compare ground truth with the fleet's
	// mean estimate; EstimateStdDev is the spread across nodes and
	// RelError the relative estimation error.
	TrueMean       float64 `json:"true_mean"`
	MeanEstimate   float64 `json:"mean_estimate"`
	EstimateStdDev float64 `json:"estimate_stddev"`
	RelError       float64 `json:"rel_error"`
	// RhoHat is the observed per-cycle variance-reduction factor
	// (zero on cycles where it is not computable: epoch boundaries,
	// zero variance).
	RhoHat float64 `json:"rho_hat,omitempty"`
	// Drops is the cumulative transport drop count (queue + filter).
	Drops int64 `json:"drops,omitempty"`
	// Alerts names the health rules active at this cycle.
	Alerts []string `json:"alerts,omitempty"`
}

// Timeline is a bounded ring of per-cycle snapshots, the scenario
// analogue of the exchange TraceRing: recording is O(1), the newest
// Cap entries are retained. A nil timeline ignores records. Safe for
// concurrent use.
type Timeline struct {
	mu    sync.Mutex
	buf   []TimelineEntry
	next  int
	total uint64
}

// NewTimeline builds a timeline retaining the newest capacity entries
// (minimum 1).
func NewTimeline(capacity int) *Timeline {
	if capacity < 1 {
		capacity = 1
	}
	return &Timeline{buf: make([]TimelineEntry, 0, capacity)}
}

// Record appends one snapshot, overwriting the oldest when full. A
// zero At is stamped with the current time. No-op on a nil timeline.
func (t *Timeline) Record(e TimelineEntry) {
	if t == nil {
		return
	}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Entries returns the retained snapshots, oldest first.
func (t *Timeline) Entries() []TimelineEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelineEntry, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total reports how many snapshots were ever recorded.
func (t *Timeline) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// timelineDump is the JSON shape of WriteJSON.
type timelineDump struct {
	Total    uint64          `json:"total"`
	Retained int             `json:"retained"`
	Entries  []TimelineEntry `json:"entries"`
}

// WriteJSON dumps the timeline as one JSON document: total recorded,
// number retained, entries oldest first. This is what /debug/timeline
// serves.
func (t *Timeline) WriteJSON(w io.Writer) error {
	entries := t.Entries()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(timelineDump{Total: t.Total(), Retained: len(entries), Entries: entries})
}
