package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceKind classifies one exchange-lifecycle event.
type TraceKind uint8

// Exchange-lifecycle event kinds, matching the protocol's state
// machine: an initiator records initiate → absorb/timeout/declined/
// stale-drop, a responder records served or one of the refusals, and
// both sides record epoch jumps and decode errors.
const (
	// TraceInitiate: the active thread sent an exchange request.
	TraceInitiate TraceKind = iota + 1
	// TraceAbsorb: the initiator applied a reply (exchange completed).
	TraceAbsorb
	// TraceTimeout: the reply never arrived in time.
	TraceTimeout
	// TraceDeclined: the peer NACKed our request (busy or joining).
	TraceDeclined
	// TraceServed: the passive thread replied and merged.
	TraceServed
	// TraceRefusedBusy: we NACKed a request while an exchange was
	// outstanding.
	TraceRefusedBusy
	// TraceRefusedJoining: we NACKed a request while waiting to join.
	TraceRefusedJoining
	// TraceStaleDrop: a message from another epoch was dropped.
	TraceStaleDrop
	// TraceEpochJump: a newer epoch identifier forced a §4.3 jump.
	TraceEpochJump
	// TraceDecodeError: an undecodable datagram arrived.
	TraceDecodeError
)

var traceKindNames = [...]string{
	TraceInitiate:       "initiate",
	TraceAbsorb:         "absorb",
	TraceTimeout:        "timeout",
	TraceDeclined:       "declined",
	TraceServed:         "served",
	TraceRefusedBusy:    "refused-busy",
	TraceRefusedJoining: "refused-joining",
	TraceStaleDrop:      "stale-drop",
	TraceEpochJump:      "epoch-jump",
	TraceDecodeError:    "decode-error",
}

// String names the kind.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) && traceKindNames[k] != "" {
		return traceKindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name.
func (k TraceKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses a kind from its name (or, for forward
// compatibility, a raw number) — trace events round-trip through JSON
// on the UDP supervisor's control channel. Unknown names decode to 0
// rather than failing: one alien event must not poison a whole
// control-channel sample.
func (k *TraceKind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		for i, n := range traceKindNames {
			if n == name {
				*k = TraceKind(i)
				return nil
			}
		}
		*k = 0
		return nil
	}
	var num uint8
	if err := json.Unmarshal(data, &num); err != nil {
		return err
	}
	*k = TraceKind(num)
	return nil
}

// TraceEvent is one structured exchange-lifecycle event.
type TraceEvent struct {
	// At is when the event happened.
	At time.Time `json:"at"`
	// Node is the recording node's address (rings are typically shared
	// by every node of a process).
	Node string `json:"node"`
	// Peer is the other party's address, when known.
	Peer string `json:"peer,omitempty"`
	// Kind classifies the event.
	Kind TraceKind `json:"kind"`
	// Seq is the exchange sequence number, correlating the initiate
	// with its outcome.
	Seq uint64 `json:"seq,omitempty"`
	// Epoch the event belonged to.
	Epoch uint64 `json:"epoch,omitempty"`
	// XID is the fleet-wide exchange identifier stamped by the
	// initiator and echoed on the wire (wire v3), letting the
	// initiator's and responder's events of one exchange stitch into a
	// causal span even across processes. Zero when the exchange ran on
	// a pre-v3 wire or the event is not exchange-scoped.
	XID uint64 `json:"xid,omitempty"`
}

// TraceRing is a bounded ring buffer of TraceEvents: recording is O(1),
// the newest Cap events are retained, older ones are overwritten. A nil
// ring ignores records, so callers thread an optional ring without
// branching. Safe for concurrent use.
type TraceRing struct {
	mu    sync.Mutex
	buf   []TraceEvent
	next  int
	total uint64
}

// NewTraceRing builds a ring retaining the newest capacity events
// (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceEvent, 0, capacity)}
}

// Record appends one event, overwriting the oldest when full. A zero At
// is stamped with the current time. No-op on a nil ring.
func (t *TraceRing) Record(ev TraceEvent) {
	if t == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *TraceRing) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// EventsSince returns, oldest first, the retained events whose
// all-time record index is >= cursor, plus the new cursor (pass 0 on
// the first call, then the returned cursor on subsequent calls). This
// is the incremental-pull shape the UDP supervisor uses to drain
// worker rings over the control channel without re-shipping events:
// each pull returns only what was recorded since the last one. Events
// that were overwritten before being pulled are silently lost, which
// is the ring's retention contract.
func (t *TraceRing) EventsSince(cursor uint64) ([]TraceEvent, uint64) {
	if t == nil {
		return nil, cursor
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	oldest := t.total - n // all-time index of the oldest retained event
	skip := uint64(0)
	if cursor > oldest {
		skip = cursor - oldest
	}
	if skip >= n {
		return nil, t.total
	}
	out := make([]TraceEvent, 0, n-skip)
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out[skip:], t.total
}

// Total reports how many events were ever recorded (retained or
// overwritten).
func (t *TraceRing) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// traceDump is the JSON shape of WriteJSON.
type traceDump struct {
	Total    uint64       `json:"total"`
	Retained int          `json:"retained"`
	Spans    []Span       `json:"spans,omitempty"`
	Events   []TraceEvent `json:"events"`
}

// WriteJSON dumps the ring as one JSON document: total recorded, number
// retained, the retained events stitched into causal exchange spans
// (see StitchSpans), and the raw retained events oldest first. This is
// what the /debug/trace endpoint and the aggscen -trace flag emit.
func (t *TraceRing) WriteJSON(w io.Writer) error {
	events := t.Events()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceDump{
		Total:    t.Total(),
		Retained: len(events),
		Spans:    StitchSpans(events),
		Events:   events,
	})
}
