package topology

import (
	"errors"

	"antientropy/internal/stats"
)

// DegreeStats summarizes the degree distribution of a materialized graph.
type DegreeStats struct {
	Min  int
	Max  int
	Mean float64
}

// Degrees computes degree statistics over all nodes of g.
func Degrees(g Graph) DegreeStats {
	n := g.N()
	if n == 0 {
		return DegreeStats{}
	}
	ds := DegreeStats{Min: g.Degree(0), Max: g.Degree(0)}
	total := 0
	for i := 0; i < n; i++ {
		d := g.Degree(i)
		total += d
		if d < ds.Min {
			ds.Min = d
		}
		if d > ds.Max {
			ds.Max = d
		}
	}
	ds.Mean = float64(total) / float64(n)
	return ds
}

// IsConnected reports whether the graph is weakly connected: treating
// every directed edge as bidirectional, all nodes are reachable from node
// 0. Weak connectivity is the property the aggregation protocol needs —
// mass can flow across an exchange in both directions.
func IsConnected(g NeighborLister) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	// Build reverse lists once so directed k-out graphs are handled.
	reverse := make([][]int32, n)
	for i := 0; i < n; i++ {
		for _, j := range g.Neighbors(i) {
			reverse[j] = append(reverse[j], int32(i))
		}
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
		for _, w := range reverse[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, int(w))
			}
		}
	}
	return count == n
}

// ClusteringCoefficient estimates the average local clustering coefficient
// by sampling `samples` nodes (or all nodes if samples ≤ 0 or ≥ N). For a
// ring lattice this is high (~0.7); for a random graph it is ~k/N.
func ClusteringCoefficient(g NeighborLister, samples int, rng *stats.RNG) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	idx := make([]int, 0, n)
	if samples <= 0 || samples >= n {
		for i := 0; i < n; i++ {
			idx = append(idx, i)
		}
	} else {
		buf := make([]int, samples)
		rng.Sample(buf, n, nil)
		idx = buf
	}
	total := 0.0
	counted := 0
	for _, v := range idx {
		nb := g.Neighbors(v)
		if len(nb) < 2 {
			continue
		}
		set := make(map[int]struct{}, len(nb))
		for _, w := range nb {
			set[w] = struct{}{}
		}
		links := 0
		for _, w := range nb {
			for _, x := range g.Neighbors(w) {
				if _, ok := set[x]; ok {
					links++
				}
			}
		}
		possible := len(nb) * (len(nb) - 1)
		total += float64(links) / float64(possible)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// AveragePathLength estimates the mean shortest-path length by running
// BFS from `sources` sampled nodes over the undirected closure of g. It
// returns an error if the graph is disconnected from any sampled source.
func AveragePathLength(g NeighborLister, sources int, rng *stats.RNG) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, nil
	}
	if sources <= 0 || sources > n {
		sources = n
	}
	reverse := make([][]int32, n)
	for i := 0; i < n; i++ {
		for _, j := range g.Neighbors(i) {
			reverse[j] = append(reverse[j], int32(i))
		}
	}
	src := make([]int, sources)
	rng.Sample(src, n, nil)
	dist := make([]int, n)
	queue := make([]int, 0, n)
	sum, count := 0.0, 0
	for _, s := range src {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		visited := 1
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					sum += float64(dist[w])
					count++
					visited++
					queue = append(queue, w)
				}
			}
			for _, w32 := range reverse[v] {
				w := int(w32)
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					sum += float64(dist[w])
					count++
					visited++
					queue = append(queue, w)
				}
			}
		}
		if visited != n {
			return 0, errors.New("topology: graph is disconnected")
		}
	}
	return sum / float64(count), nil
}

// DegreeHistogram returns a map from degree to node count, used to verify
// the power-law tail of Barabási–Albert graphs.
func DegreeHistogram(g Graph) map[int]int {
	hist := make(map[int]int)
	for i := 0; i < g.N(); i++ {
		hist[g.Degree(i)]++
	}
	return hist
}
