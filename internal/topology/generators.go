package topology

import (
	"fmt"
	"slices"

	"antientropy/internal/stats"
)

// NewRandomKOut builds the paper's "random" topology: the neighbor set of
// each node is filled with k distinct peers sampled uniformly at random
// (self excluded). Edges are directed; the paper's evaluation uses k = 20.
func NewRandomKOut(n, k int, rng *stats.RNG) (*Adjacency, error) {
	if err := validateSize(n); err != nil {
		return nil, err
	}
	if k < 1 || k > n-1 {
		return nil, fmt.Errorf("topology: k-out degree %d not in [1, %d]", k, n-1)
	}
	lists := make([][]int32, n)
	buf := make([]int, k)
	for i := 0; i < n; i++ {
		rng.Sample(buf, n, func(v int) bool { return v == i })
		l := make([]int32, k)
		for j, v := range buf {
			l[j] = int32(v)
		}
		lists[i] = l
	}
	return newAdjacency(lists), nil
}

// NewRingLattice builds the regular ring lattice underlying the
// Watts–Strogatz model: nodes are arranged in a ring and each node is
// connected to its k nearest neighbors (k/2 on each side). k must be even
// and < n. The graph is undirected: each edge appears in both lists.
func NewRingLattice(n, k int) (*Adjacency, error) {
	if err := validateSize(n); err != nil {
		return nil, err
	}
	if k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("topology: lattice degree %d must be even and in [2, %d]", k, n-1)
	}
	lists := make([][]int32, n)
	half := k / 2
	for i := 0; i < n; i++ {
		l := make([]int32, 0, k)
		for d := 1; d <= half; d++ {
			l = append(l, int32((i+d)%n), int32((i-d+n)%n))
		}
		lists[i] = l
	}
	return newAdjacency(lists), nil
}

// NewWattsStrogatz builds a Watts–Strogatz small-world graph [14]: a ring
// lattice of degree k in which each clockwise edge (i, i+d) is rewired
// with probability beta to (i, random) avoiding self-loops and duplicate
// edges. beta = 0 leaves the lattice intact; beta = 1 rewires every edge,
// approaching a random graph (paper §4.4 and Figure 4a).
func NewWattsStrogatz(n, k int, beta float64, rng *stats.RNG) (*Adjacency, error) {
	if err := validateSize(n); err != nil {
		return nil, err
	}
	if k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("topology: lattice degree %d must be even and in [2, %d]", k, n-1)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("topology: rewiring probability %g not in [0,1]", beta)
	}
	half := k / 2
	// Track undirected edges in per-node sets for duplicate avoidance.
	sets := make([]map[int32]struct{}, n)
	for i := range sets {
		sets[i] = make(map[int32]struct{}, k)
	}
	addEdge := func(a, b int32) {
		sets[a][b] = struct{}{}
		sets[b][a] = struct{}{}
	}
	hasEdge := func(a, b int32) bool {
		_, ok := sets[a][b]
		return ok
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= half; d++ {
			addEdge(int32(i), int32((i+d)%n))
		}
	}
	// Standard WS pass: rewire clockwise edges lattice-order, keeping the
	// i endpoint fixed.
	for d := 1; d <= half; d++ {
		for i := 0; i < n; i++ {
			if !rng.Bool(beta) {
				continue
			}
			oldTo := int32((i + d) % n)
			if !hasEdge(int32(i), oldTo) {
				// Already rewired away by an earlier pass over the
				// reciprocal edge; skip.
				continue
			}
			// A node whose edges all exist already cannot be rewired
			// without creating a duplicate; bounded retries keep the pass
			// O(1) in expectation.
			var newTo int32
			found := false
			for attempt := 0; attempt < 64; attempt++ {
				cand := int32(rng.Intn(n))
				if cand == int32(i) || hasEdge(int32(i), cand) {
					continue
				}
				newTo = cand
				found = true
				break
			}
			if !found {
				continue
			}
			delete(sets[i], oldTo)
			delete(sets[oldTo], int32(i))
			addEdge(int32(i), newTo)
		}
	}
	lists := make([][]int32, n)
	for i, s := range sets {
		l := make([]int32, 0, len(s))
		for v := range s {
			l = append(l, v)
		}
		// Sort so the adjacency layout is independent of map iteration
		// order: runs must be reproducible bit-for-bit from the seed.
		slices.Sort(l)
		lists[i] = l
	}
	return newAdjacency(lists), nil
}

// NewKRegular builds a random simple k-regular undirected graph with the
// pairing (configuration) model plus edge-swap repair: every node gets k
// stubs, stubs are paired randomly, and self-loops or duplicate edges are
// fixed by 2-swaps with randomly chosen good edges. The whole build is
// retried if repair stalls or the result is disconnected (both are rare
// for k ≥ 3 and n ≫ k). This is the strictest reading of the paper's
// "regular degree of 20": exact degree k at every node, undirected.
func NewKRegular(n, k int, rng *stats.RNG) (*Adjacency, error) {
	if err := validateSize(n); err != nil {
		return nil, err
	}
	if k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("topology: regular degree %d must be even and in [2, %d]", k, n-1)
	}
	const buildRetries = 16
	for attempt := 0; attempt < buildRetries; attempt++ {
		g, ok := tryKRegular(n, k, rng)
		if ok && IsConnected(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: failed to build a connected simple %d-regular graph on %d nodes", k, n)
}

// tryKRegular performs one pairing + repair pass.
func tryKRegular(n, k int, rng *stats.RNG) (*Adjacency, bool) {
	stubs := make([]int32, 0, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			stubs = append(stubs, int32(i))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	type edge struct{ u, v int32 }
	edges := make([]edge, 0, len(stubs)/2)
	sets := make([]map[int32]struct{}, n)
	for i := range sets {
		sets[i] = make(map[int32]struct{}, k)
	}
	has := func(a, b int32) bool {
		_, ok := sets[a][b]
		return ok
	}
	add := func(a, b int32) {
		sets[a][b] = struct{}{}
		sets[b][a] = struct{}{}
	}
	remove := func(a, b int32) {
		delete(sets[a], b)
		delete(sets[b], a)
	}
	var bad []edge
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || has(u, v) {
			bad = append(bad, edge{u, v})
			continue
		}
		add(u, v)
		edges = append(edges, edge{u, v})
	}
	// Repair: swap each bad pairing against a random good edge.
	repairBudget := 64 * (len(bad) + 1)
	for len(bad) > 0 && repairBudget > 0 {
		repairBudget--
		b := bad[len(bad)-1]
		if len(edges) == 0 {
			return nil, false
		}
		ei := rng.Intn(len(edges))
		g := edges[ei]
		// Propose (b.u, g.u) and (b.v, g.v).
		if b.u == g.u || b.v == g.v || has(b.u, g.u) || has(b.v, g.v) {
			continue
		}
		// Guard the diagonal case where both proposals are the same edge.
		if b.u == g.v && b.v == g.u {
			continue
		}
		if b.u == g.v || b.v == g.u {
			// Would recreate a self-loop on one side.
			continue
		}
		remove(g.u, g.v)
		add(b.u, g.u)
		add(b.v, g.v)
		edges[ei] = edge{b.u, g.u}
		edges = append(edges, edge{b.v, g.v})
		bad = bad[:len(bad)-1]
	}
	if len(bad) > 0 {
		return nil, false
	}
	lists := make([][]int32, n)
	for i, s := range sets {
		l := make([]int32, 0, len(s))
		for v := range s {
			l = append(l, v)
		}
		// Sort so the adjacency layout is independent of map iteration
		// order: runs must be reproducible bit-for-bit from the seed.
		slices.Sort(l)
		lists[i] = l
	}
	return newAdjacency(lists), true
}

// NewBarabasiAlbert builds a scale-free graph by preferential attachment
// [1]: nodes are added one at a time and each new node is wired to m
// existing nodes chosen with probability proportional to their current
// degree. The paper's evaluation uses average degree ≈ 20, i.e. m = 10.
// The graph is undirected.
func NewBarabasiAlbert(n, m int, rng *stats.RNG) (*Adjacency, error) {
	if err := validateSize(n); err != nil {
		return nil, err
	}
	if m < 1 || m >= n {
		return nil, fmt.Errorf("topology: attachment count %d not in [1, %d]", m, n-1)
	}
	lists := make([][]int32, n)
	// targets holds one entry per edge endpoint; sampling uniformly from
	// it realizes degree-proportional selection.
	targets := make([]int32, 0, 2*m*n)
	// Seed: a clique on the first m+1 nodes so every early node has
	// non-zero degree.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			lists[i] = append(lists[i], int32(j))
			lists[j] = append(lists[j], int32(i))
			targets = append(targets, int32(i), int32(j))
		}
	}
	chosen := make(map[int32]struct{}, m)
	for v := m + 1; v < n; v++ {
		clear(chosen)
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			chosen[t] = struct{}{}
		}
		wired := make([]int32, 0, m)
		for t := range chosen {
			wired = append(wired, t)
		}
		// Deterministic wiring order regardless of map iteration.
		slices.Sort(wired)
		for _, t := range wired {
			lists[v] = append(lists[v], t)
			lists[t] = append(lists[t], int32(v))
			targets = append(targets, int32(v), t)
		}
	}
	return newAdjacency(lists), nil
}
