package topology

import (
	"testing"

	"antientropy/internal/stats"
)

func TestKRegular(t *testing.T) {
	rng := stats.NewRNG(21)
	g, err := NewKRegular(500, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := Degrees(g)
	if ds.Min != 20 || ds.Max != 20 {
		t.Fatalf("not regular: degrees %+v", ds)
	}
	assertSimple(t, g)
	assertSymmetric(t, g)
	if !IsConnected(g) {
		t.Error("k-regular cycle union must be connected")
	}
}

func TestKRegularSmall(t *testing.T) {
	rng := stats.NewRNG(22)
	g, err := NewKRegular(5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := Degrees(g)
	if ds.Min != 2 || ds.Max != 2 {
		t.Fatalf("degrees %+v", ds)
	}
}

func TestKRegularErrors(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := NewKRegular(10, 3, rng); err == nil {
		t.Error("odd degree accepted")
	}
	if _, err := NewKRegular(10, 10, rng); err == nil {
		t.Error("degree >= n accepted")
	}
	if _, err := NewKRegular(0, 2, rng); err == nil {
		t.Error("n=0 accepted")
	}
	// Infeasible: n=3, k=2 works (triangle); but n=3 with k=2 asks for 1
	// cycle — fine. n=4, k=4 rejected by k>=n... try a genuinely hard
	// case: n=4, k=2 twice would need 2 disjoint Hamilton cycles on 4
	// nodes — only 3 distinct ones exist and they share edges, so the
	// builder must give up cleanly rather than loop forever.
	if _, err := NewKRegular(4, 4, rng); err == nil {
		t.Error("k=n accepted")
	}
}

func TestKRegularDeterministic(t *testing.T) {
	a, err := NewKRegular(200, 10, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKRegular(200, 10, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		na, nb := a.Neighbors(i), b.Neighbors(i)
		if len(na) != len(nb) {
			t.Fatalf("node %d: degree differs", i)
		}
		for j := range na {
			if na[j] != nb[j] {
				t.Fatalf("node %d: adjacency order differs (determinism broken)", i)
			}
		}
	}
}

func TestGeneratorsDeterministicLayout(t *testing.T) {
	// The sorted-list fix must make every randomized generator reproduce
	// the exact adjacency layout from the seed.
	builders := map[string]func(seed uint64) (*Adjacency, error){
		"watts-strogatz": func(s uint64) (*Adjacency, error) {
			return NewWattsStrogatz(300, 10, 0.4, stats.NewRNG(s))
		},
		"barabasi-albert": func(s uint64) (*Adjacency, error) {
			return NewBarabasiAlbert(300, 5, stats.NewRNG(s))
		},
		"random-k-out": func(s uint64) (*Adjacency, error) {
			return NewRandomKOut(300, 10, stats.NewRNG(s))
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			a, err := build(77)
			if err != nil {
				t.Fatal(err)
			}
			b, err := build(77)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < a.N(); i++ {
				na, nb := a.Neighbors(i), b.Neighbors(i)
				if len(na) != len(nb) {
					t.Fatalf("node %d: degree differs", i)
				}
				for j := range na {
					if na[j] != nb[j] {
						t.Fatalf("node %d: layout differs at slot %d", i, j)
					}
				}
			}
		})
	}
}
