// Package topology provides the overlay topologies evaluated in the
// DSN'04 paper (Figures 3 and 4): complete, random k-out, ring lattice,
// Watts–Strogatz small worlds and Barabási–Albert scale-free graphs,
// together with the graph metrics used to validate them.
//
// Graphs are exposed through a sampling interface so that the complete
// graph on a million nodes needs no adjacency storage, while the
// materialized generators share a compact CSR (compressed sparse row)
// representation.
package topology

import (
	"errors"
	"fmt"

	"antientropy/internal/stats"
)

// Graph is a (possibly implicit) directed overlay: node i may initiate an
// exchange with any of its out-neighbors. Undirected topologies list each
// edge in both directions.
type Graph interface {
	// N returns the number of nodes.
	N() int
	// Degree returns the out-degree of node.
	Degree(node int) int
	// Neighbor returns a uniformly random out-neighbor of node, or -1 if
	// the node has no neighbors.
	Neighbor(node int, rng *stats.RNG) int
}

// NeighborLister is implemented by materialized graphs that can enumerate
// exact neighbor sets (used by metrics and tests).
type NeighborLister interface {
	Graph
	// Neighbors returns a copy of node's out-neighbor list.
	Neighbors(node int) []int
}

// Complete is the fully connected overlay: every node knows every other
// node. It is implicit — no adjacency is stored.
type Complete struct {
	n int
}

var _ Graph = (*Complete)(nil)

// NewComplete returns the complete graph on n ≥ 1 nodes.
func NewComplete(n int) (*Complete, error) {
	if n < 1 {
		return nil, errors.New("topology: complete graph needs n >= 1")
	}
	return &Complete{n: n}, nil
}

// N returns the number of nodes.
func (g *Complete) N() int { return g.n }

// Degree returns n−1 for every node.
func (g *Complete) Degree(int) int { return g.n - 1 }

// Neighbor returns a uniform random node different from node.
func (g *Complete) Neighbor(node int, rng *stats.RNG) int {
	if g.n < 2 {
		return -1
	}
	j := rng.Intn(g.n - 1)
	if j >= node {
		j++
	}
	return j
}

// Adjacency is a materialized graph in CSR form. Neighbor ids are stored
// as int32 to halve memory at the 10⁶-node scale of Figure 3(a).
type Adjacency struct {
	offsets []int32
	edges   []int32
}

var _ NeighborLister = (*Adjacency)(nil)

// newAdjacency builds a CSR graph from per-node neighbor lists.
func newAdjacency(lists [][]int32) *Adjacency {
	n := len(lists)
	offsets := make([]int32, n+1)
	total := 0
	for i, l := range lists {
		total += len(l)
		offsets[i+1] = int32(total)
	}
	edges := make([]int32, 0, total)
	for _, l := range lists {
		edges = append(edges, l...)
	}
	return &Adjacency{offsets: offsets, edges: edges}
}

// N returns the number of nodes.
func (g *Adjacency) N() int { return len(g.offsets) - 1 }

// Degree returns the out-degree of node.
func (g *Adjacency) Degree(node int) int {
	return int(g.offsets[node+1] - g.offsets[node])
}

// Neighbor returns a uniform random out-neighbor of node, or -1 if node
// has none.
func (g *Adjacency) Neighbor(node int, rng *stats.RNG) int {
	lo, hi := g.offsets[node], g.offsets[node+1]
	if lo == hi {
		return -1
	}
	return int(g.edges[lo+int32(rng.Intn(int(hi-lo)))])
}

// Neighbors returns a copy of node's out-neighbor list.
func (g *Adjacency) Neighbors(node int) []int {
	lo, hi := g.offsets[node], g.offsets[node+1]
	out := make([]int, 0, hi-lo)
	for _, v := range g.edges[lo:hi] {
		out = append(out, int(v))
	}
	return out
}

// Edges returns the total number of directed edges.
func (g *Adjacency) Edges() int { return len(g.edges) }

// validateSize reports an error for non-positive node counts; generators
// share it so error text stays uniform.
func validateSize(n int) error {
	if n < 1 {
		return fmt.Errorf("topology: invalid node count %d", n)
	}
	return nil
}
