package topology

import (
	"testing"

	"antientropy/internal/stats"
)

func TestCompleteGraph(t *testing.T) {
	g, err := NewComplete(100)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Degree(0) != 99 {
		t.Fatalf("Degree = %d, want 99", g.Degree(0))
	}
	rng := stats.NewRNG(1)
	seen := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		v := g.Neighbor(42, rng)
		if v == 42 {
			t.Fatal("complete graph returned self as neighbor")
		}
		if v < 0 || v >= 100 {
			t.Fatalf("neighbor out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 99 {
		t.Fatalf("after 5000 draws only %d of 99 peers seen", len(seen))
	}
}

func TestCompleteGraphEdgeCases(t *testing.T) {
	if _, err := NewComplete(0); err == nil {
		t.Error("n=0 accepted")
	}
	g, err := NewComplete(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Neighbor(0, stats.NewRNG(1)); got != -1 {
		t.Fatalf("singleton neighbor = %d, want -1", got)
	}
}

func TestRandomKOut(t *testing.T) {
	rng := stats.NewRNG(2)
	g, err := NewRandomKOut(500, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	for i := 0; i < g.N(); i++ {
		nb := g.Neighbors(i)
		if len(nb) != 20 {
			t.Fatalf("node %d has degree %d, want 20", i, len(nb))
		}
		seen := make(map[int]bool, 20)
		for _, j := range nb {
			if j == i {
				t.Fatalf("node %d lists itself", i)
			}
			if seen[j] {
				t.Fatalf("node %d lists %d twice", i, j)
			}
			seen[j] = true
		}
	}
	if !IsConnected(g) {
		t.Error("random 20-out graph on 500 nodes should be connected")
	}
}

func TestRandomKOutErrors(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := NewRandomKOut(0, 5, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewRandomKOut(10, 0, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewRandomKOut(10, 10, rng); err == nil {
		t.Error("k=n accepted")
	}
}

func TestRingLattice(t *testing.T) {
	g, err := NewRingLattice(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 must know 1, 2, 8, 9.
	want := map[int]bool{1: true, 2: true, 8: true, 9: true}
	for _, v := range g.Neighbors(0) {
		if !want[v] {
			t.Fatalf("unexpected lattice neighbor %d", v)
		}
		delete(want, v)
	}
	if len(want) != 0 {
		t.Fatalf("missing lattice neighbors: %v", want)
	}
	if !IsConnected(g) {
		t.Error("lattice must be connected")
	}
	ds := Degrees(g)
	if ds.Min != 4 || ds.Max != 4 {
		t.Fatalf("lattice degrees = %+v, want uniform 4", ds)
	}
}

func TestRingLatticeErrors(t *testing.T) {
	if _, err := NewRingLattice(10, 3); err == nil {
		t.Error("odd degree accepted")
	}
	if _, err := NewRingLattice(10, 10); err == nil {
		t.Error("degree >= n accepted")
	}
	if _, err := NewRingLattice(0, 2); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestWattsStrogatzBetaZeroIsLattice(t *testing.T) {
	rng := stats.NewRNG(3)
	ws, err := NewWattsStrogatz(50, 6, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	lattice, err := NewRingLattice(50, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a := toSet(ws.Neighbors(i))
		b := toSet(lattice.Neighbors(i))
		if len(a) != len(b) {
			t.Fatalf("node %d: WS(0) degree %d != lattice %d", i, len(a), len(b))
		}
		for v := range b {
			if !a[v] {
				t.Fatalf("node %d: WS(0) missing lattice edge to %d", i, v)
			}
		}
	}
}

func TestWattsStrogatzPreservesEdgeCount(t *testing.T) {
	for _, beta := range []float64{0, 0.25, 0.5, 0.75, 1} {
		rng := stats.NewRNG(4)
		g, err := NewWattsStrogatz(200, 10, beta, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Rewiring moves edges, never adds or removes: 200·10/2 = 1000
		// undirected edges, i.e. 2000 directed entries.
		if g.Edges() != 2000 {
			t.Errorf("beta=%g: %d directed edges, want 2000", beta, g.Edges())
		}
		if !IsConnected(g) {
			t.Errorf("beta=%g: disconnected", beta)
		}
	}
}

func TestWattsStrogatzRandomizesClustering(t *testing.T) {
	// Clustering must drop as beta rises: that is the small-world effect
	// the paper leans on in Figure 4(a).
	rng := stats.NewRNG(5)
	ordered, err := NewWattsStrogatz(1000, 10, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	disordered, err := NewWattsStrogatz(1000, 10, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	c0 := ClusteringCoefficient(ordered, 200, stats.NewRNG(6))
	c1 := ClusteringCoefficient(disordered, 200, stats.NewRNG(6))
	if c0 < 0.5 {
		t.Errorf("lattice clustering %g, want > 0.5", c0)
	}
	if c1 > 0.1 {
		t.Errorf("beta=1 clustering %g, want < 0.1", c1)
	}
}

func TestWattsStrogatzNoSelfLoopsNoDupes(t *testing.T) {
	rng := stats.NewRNG(7)
	g, err := NewWattsStrogatz(300, 8, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	assertSimple(t, g)
	assertSymmetric(t, g)
}

func TestWattsStrogatzErrors(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := NewWattsStrogatz(10, 4, -0.1, rng); err == nil {
		t.Error("beta < 0 accepted")
	}
	if _, err := NewWattsStrogatz(10, 4, 1.1, rng); err == nil {
		t.Error("beta > 1 accepted")
	}
	if _, err := NewWattsStrogatz(10, 5, 0.5, rng); err == nil {
		t.Error("odd degree accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := stats.NewRNG(8)
	g, err := NewBarabasiAlbert(2000, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("N = %d", g.N())
	}
	assertSimple(t, g)
	assertSymmetric(t, g)
	if !IsConnected(g) {
		t.Error("BA graph must be connected")
	}
	ds := Degrees(g)
	// Preferential attachment: a hub must emerge with degree far above the
	// mean (power-law tail), while the minimum stays at m.
	if ds.Min < 10 {
		t.Errorf("min degree %d < m", ds.Min)
	}
	if float64(ds.Max) < 4*ds.Mean {
		t.Errorf("no hub: max degree %d vs mean %.1f", ds.Max, ds.Mean)
	}
	// Average degree ≈ 2m.
	if ds.Mean < 18 || ds.Mean > 22 {
		t.Errorf("mean degree %.2f, want ≈ 20", ds.Mean)
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := NewBarabasiAlbert(10, 0, rng); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewBarabasiAlbert(10, 10, rng); err == nil {
		t.Error("m=n accepted")
	}
}

func TestIsConnectedDetectsPartitions(t *testing.T) {
	// Two disjoint triangles.
	lists := [][]int32{
		{1, 2}, {0, 2}, {0, 1},
		{4, 5}, {3, 5}, {3, 4},
	}
	g := newAdjacency(lists)
	if IsConnected(g) {
		t.Error("disjoint triangles reported connected")
	}
}

func TestIsConnectedHandlesDirectedReachability(t *testing.T) {
	// 0 -> 1 -> 2 with no back edges: weakly connected.
	g := newAdjacency([][]int32{{1}, {2}, {}})
	if !IsConnected(g) {
		t.Error("directed chain should be weakly connected")
	}
}

func TestDegreesAndHistogram(t *testing.T) {
	g := newAdjacency([][]int32{{1, 2}, {0}, {0}})
	ds := Degrees(g)
	if ds.Min != 1 || ds.Max != 2 || !almost(ds.Mean, 4.0/3, 1e-12) {
		t.Fatalf("Degrees = %+v", ds)
	}
	hist := DegreeHistogram(g)
	if hist[1] != 2 || hist[2] != 1 {
		t.Fatalf("histogram = %v", hist)
	}
}

func TestAveragePathLength(t *testing.T) {
	// A 5-ring: distances from any node are 1,1,2,2 -> mean 1.5.
	g, err := NewRingLattice(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	apl, err := AveragePathLength(g, 0, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(apl, 1.5, 1e-12) {
		t.Fatalf("APL = %g, want 1.5", apl)
	}
}

func TestAveragePathLengthDisconnected(t *testing.T) {
	g := newAdjacency([][]int32{{1}, {0}, {3}, {2}})
	if _, err := AveragePathLength(g, 0, stats.NewRNG(1)); err == nil {
		t.Error("disconnected graph should error")
	}
}

func TestSmallWorldPathShortening(t *testing.T) {
	// The defining small-world property: a little rewiring slashes path
	// length while the lattice keeps it long.
	lattice, err := NewRingLattice(600, 6)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWattsStrogatz(600, 6, 0.25, stats.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	aplLattice, err := AveragePathLength(lattice, 20, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	aplWS, err := AveragePathLength(ws, 20, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if aplWS >= aplLattice/2 {
		t.Errorf("rewiring did not shorten paths: lattice %.1f vs WS %.1f", aplLattice, aplWS)
	}
}

func TestNeighborNeverNegativeOnPopulatedGraph(t *testing.T) {
	rng := stats.NewRNG(12)
	g, err := NewRandomKOut(50, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		for trial := 0; trial < 20; trial++ {
			if v := g.Neighbor(i, rng); v < 0 || v >= 50 {
				t.Fatalf("neighbor out of range: %d", v)
			}
		}
	}
}

func TestAdjacencyNeighborEmptyList(t *testing.T) {
	g := newAdjacency([][]int32{{}, {0}})
	if v := g.Neighbor(0, stats.NewRNG(1)); v != -1 {
		t.Fatalf("isolated node neighbor = %d, want -1", v)
	}
}

func TestNeighborsReturnsCopy(t *testing.T) {
	g := newAdjacency([][]int32{{1, 2}, {}, {}})
	nb := g.Neighbors(0)
	nb[0] = 99
	if g.Neighbors(0)[0] == 99 {
		t.Error("Neighbors exposed internal storage")
	}
}

func toSet(xs []int) map[int]bool {
	m := make(map[int]bool, len(xs))
	for _, v := range xs {
		m[v] = true
	}
	return m
}

func almost(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// assertSimple verifies no self-loops and no duplicate directed edges.
func assertSimple(t *testing.T, g *Adjacency) {
	t.Helper()
	for i := 0; i < g.N(); i++ {
		seen := make(map[int]bool)
		for _, v := range g.Neighbors(i) {
			if v == i {
				t.Fatalf("self-loop at node %d", i)
			}
			if seen[v] {
				t.Fatalf("duplicate edge %d -> %d", i, v)
			}
			seen[v] = true
		}
	}
}

// assertSymmetric verifies the graph is undirected: j in N(i) ⇒ i in N(j).
func assertSymmetric(t *testing.T, g *Adjacency) {
	t.Helper()
	for i := 0; i < g.N(); i++ {
		for _, j := range g.Neighbors(i) {
			found := false
			for _, back := range g.Neighbors(j) {
				if back == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d -> %d has no reverse", i, j)
			}
		}
	}
}
