module antientropy

go 1.24
