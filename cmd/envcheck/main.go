// Command envcheck guards regenerated paper figures against regressions:
// it compares a figure CSV (the "figure,series,x,mean,min,max,reps"
// stream cmd/aggsim emits) to a golden envelope of per-point bounds on
// the mean, and exits non-zero when any point escapes its envelope. The
// nightly CI workflow regenerates fig2 and fig6b on the sharded engine
// at reduced paper scale and gates them with the envelopes checked in
// under testdata/envelopes/.
//
// The nightly sweeps pin the seed and the shard count, which makes the
// sharded engine bit-deterministic, so the envelope margins only need to
// absorb cross-platform float noise — any larger move means the
// protocol's behaviour actually changed and someone should look.
//
// Usage:
//
//	envcheck envelope.csv figure.csv           # verify, exit 1 on breach
//	envcheck -gen -rel 0.05 -abs 0.05 figure.csv > envelope.csv
//
// Regenerate an envelope (with -gen, after an intentional behaviour
// change) from a figure CSV produced by the exact command the nightly
// workflow runs, and commit the result.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "envcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gen = flag.Bool("gen", false, "generate an envelope from a figure CSV on stdout instead of checking")
		rel = flag.Float64("rel", 0.05, "with -gen: relative margin around each mean")
		abs = flag.Float64("abs", 0.05, "with -gen: absolute margin around each mean")
	)
	flag.Parse()
	if *gen {
		if flag.NArg() != 1 {
			return fmt.Errorf("usage: envcheck -gen [-rel R] [-abs A] figure.csv")
		}
		return generate(flag.Arg(0), *rel, *abs)
	}
	if flag.NArg() != 2 {
		return fmt.Errorf("usage: envcheck envelope.csv figure.csv")
	}
	return check(flag.Arg(0), flag.Arg(1))
}

// point identifies one figure data point.
type point struct {
	figure, series, x string
}

// readCSV loads a CSV with the expected header, returning the rows.
func readCSV(path string, wantHeader []string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("%s: reading header: %w", path, err)
	}
	if len(header) < len(wantHeader) {
		return nil, fmt.Errorf("%s: header %v, want at least %v", path, header, wantHeader)
	}
	for i, col := range wantHeader {
		if header[i] != col {
			return nil, fmt.Errorf("%s: header column %d is %q, want %q", path, i, header[i], col)
		}
	}
	var rows [][]string
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		rows = append(rows, rec)
	}
}

var figureHeader = []string{"figure", "series", "x", "mean", "min", "max", "reps"}

// readFigure loads the mean of every figure point.
func readFigure(path string) (map[point]float64, error) {
	rows, err := readCSV(path, figureHeader)
	if err != nil {
		return nil, err
	}
	means := make(map[point]float64, len(rows))
	for _, rec := range rows {
		mean, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad mean %q: %w", path, rec[3], err)
		}
		means[point{rec[0], rec[1], rec[2]}] = mean
	}
	return means, nil
}

// generate emits an envelope CSV for the figure on stdout.
func generate(figurePath string, rel, abs float64) error {
	rows, err := readCSV(figurePath, figureHeader)
	if err != nil {
		return err
	}
	fmt.Println("figure,series,x,lo,hi")
	for _, rec := range rows {
		mean, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return fmt.Errorf("%s: bad mean %q: %w", figurePath, rec[3], err)
		}
		margin := rel*math.Abs(mean) + abs
		fmt.Printf("%s,%s,%s,%g,%g\n", rec[0], rec[1], rec[2], mean-margin, mean+margin)
	}
	return nil
}

// check verifies every envelope point against the figure CSV.
func check(envelopePath, figurePath string) error {
	envRows, err := readCSV(envelopePath, []string{"figure", "series", "x", "lo", "hi"})
	if err != nil {
		return err
	}
	means, err := readFigure(figurePath)
	if err != nil {
		return err
	}
	breaches := 0
	for _, rec := range envRows {
		p := point{rec[0], rec[1], rec[2]}
		lo, err1 := strconv.ParseFloat(rec[3], 64)
		hi, err2 := strconv.ParseFloat(rec[4], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("%s: bad bounds for %v", envelopePath, p)
		}
		mean, ok := means[p]
		if !ok {
			fmt.Printf("MISSING %s/%s x=%s: figure CSV has no such point\n", p.figure, p.series, p.x)
			breaches++
			continue
		}
		if mean < lo || mean > hi {
			fmt.Printf("BREACH  %s/%s x=%s: mean %g outside [%g, %g]\n", p.figure, p.series, p.x, mean, lo, hi)
			breaches++
		}
	}
	if breaches > 0 {
		return fmt.Errorf("%d of %d envelope points breached", breaches, len(envRows))
	}
	fmt.Printf("OK: %d envelope points within bounds\n", len(envRows))
	return nil
}
