// Command aggscen lists, runs and compares declarative scenarios:
// scripted churn waves, correlated crashes, flash crowds, network
// partitions, loss/delay bursts and value dynamics, executed against
// the deterministic cycle-driven simulator, a fleet of live agent nodes
// over the in-memory transport, or a multi-process fleet on real UDP
// loopback sockets.
//
// The simulator executor runs on one of two engines: the serial engine
// (bit-deterministic from the seed alone) or the sharded multi-core
// engine (deterministic per seed + shard count, built for 10⁵–10⁶-node
// runs). The default -engine auto picks the sharded engine for
// scenarios of 20k node slots and up; an explicit -engine serial or
// -engine sharded always wins, and the executed engine is echoed in the
// per-run summary ("sim" vs "sim-sharded").
//
// The UDP executor forks -workers worker processes (this binary
// re-executed with the internal -worker flag), each running a slice of
// the fleet on real sockets; partitions and loss are injected through
// per-process drop rules, so the same scripts apply to all three
// executors.
//
// Usage:
//
//	aggscen -list
//	aggscen -run partition-heal -n 1000            # sim + live, CSV
//	aggscen -run loss-burst -executor sim -format json
//	aggscen -run partition-heal -executor udp -workers 3
//	aggscen -run partition-heal -n 100000 -executor sim -engine sharded -shards 8
//	aggscen -file my-scenario.json -out metrics.csv
//	aggscen -compare steady-churn,loss-burst,partition-heal
//	aggscen -compare partition-heal -executor both  # sim vs live divergence
//	aggscen -compare partition-heal -executor udp   # sim vs udp divergence
//	aggscen -show partition-heal                   # print the JSON script
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"antientropy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggscen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list the canned scenarios and exit")
		name     = flag.String("run", "", "run a canned scenario by name")
		file     = flag.String("file", "", "run a scenario from a JSON file")
		show     = flag.String("show", "", "print a canned scenario as JSON and exit")
		compare  = flag.String("compare", "", "comma-separated scenario names to run and summarize (add -executor both/udp/all for sim-vs-fleet divergence)")
		n        = flag.Int("n", 0, "override the network size")
		cycles   = flag.Int("cycles", 0, "override the run length")
		seed     = flag.Uint64("seed", 0, "override the scenario seed")
		executor = flag.String("executor", "", "executors to use: sim, live, udp, both (= sim,live), all, or a comma list (default: both for -run, sim for -compare)")
		engine   = flag.String("engine", "auto", "sim executor engine: auto (by size), serial, or sharded")
		shards   = flag.Int("shards", 0, "shard count for -engine sharded (0 = GOMAXPROCS); results are deterministic per seed + shard count")
		workers  = flag.Int("workers", 3, "udp executor: number of worker processes the fleet is sliced across")
		udpTrans = flag.String("udp-transport", "", "udp executor datagram layer: mux (shared batched sockets, default) or endpoint (one socket per node)")
		viewCap  = flag.Int("view-cap", 0, "cap the piggybacked membership view per exchange datagram, in bytes (live/udp executors; 0 = unlimited)")
		format   = flag.String("format", "csv", "metric output format: csv or json")
		outPath  = flag.String("out", "", "write metrics to this file instead of stdout")
		cycleLen = flag.Duration("cycle-len", 0, "live/udp executors: wall-clock cycle length (0 = scale with fleet size and cores)")
		worker   = flag.Bool("worker", false, "internal: run as a UDP-executor worker process, speaking the control protocol on stdin/stdout")

		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, /debug/trace, /debug/timeline and /debug/pprof on this address for the duration of the run (empty: off)")
		traceCap    = flag.Int("trace", 0, "retain the newest N exchange trace events fleet-wide (served on /debug/trace and dumped to stderr at the end of the run; 0: off)")
		timelineCap = flag.Int("timeline", 512, "retain the newest N per-cycle flight-recorder snapshots (served on /debug/timeline; 0: off)")
		logLevel    = flag.String("log", "info", "stderr log level: debug, info, warn or error")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		return err
	}

	if *worker {
		return antientropy.RunScenarioUDPWorker(os.Stdin, os.Stdout)
	}

	// Telemetry is shared across every executor of the invocation: one
	// registry (and one /metrics endpoint) no matter how many runs. The
	// trace dump only happens when -trace was actually set, and the
	// announcement goes through the structured logger.
	var (
		reg      *antientropy.MetricsRegistry
		ring     *antientropy.TraceRing
		timeline *antientropy.Timeline
	)
	if *traceCap > 0 {
		ring = antientropy.NewTraceRing(*traceCap)
		defer func() {
			logger.Info("dumping exchange trace", "retained", len(ring.Events()), "total", ring.Total())
			_ = ring.WriteJSON(os.Stderr)
		}()
	}
	if *timelineCap > 0 {
		timeline = antientropy.NewTimeline(*timelineCap)
	}
	if *metricsAddr != "" {
		reg = antientropy.NewMetricsRegistry()
		srv, err := antientropy.ServeTelemetry(*metricsAddr, reg, ring, timeline)
		if err != nil {
			return err
		}
		defer srv.Close()
		logger.Info("telemetry serving", "url", fmt.Sprintf("http://%s/metrics", srv.Addr()))
	}

	simOpts := antientropy.ScenarioSimOptions{Engine: *engine, Shards: *shards, Obs: reg,
		Timeline: timeline, Logger: logger}
	udpOpts := antientropy.ScenarioUDPOptions{Workers: *workers, CycleLen: *cycleLen,
		Transport: *udpTrans, Obs: reg,
		TraceCap: *traceCap, Trace: ring, Timeline: timeline, Logger: logger}
	liveOpts := antientropy.ScenarioLiveOptions{CycleLen: *cycleLen, Obs: reg, Trace: ring,
		Timeline: timeline, Logger: logger}
	switch {
	case *list:
		return listScenarios()
	case *show != "":
		return showScenario(*show)
	case *compare != "":
		extras, err := parseExecutors(*executor, "sim")
		if err != nil {
			return err
		}
		return compareScenarios(strings.Split(*compare, ","), *n, *cycles, *viewCap, *seed, extras, simOpts, udpOpts, liveOpts)
	case *name != "" || *file != "":
		sc, err := loadScenario(*name, *file)
		if err != nil {
			return err
		}
		if *n > 0 {
			sc.N = *n
		}
		if *cycles > 0 {
			sc.Cycles = *cycles
		}
		if *seed != 0 {
			sc.Seed = *seed
		}
		if *viewCap > 0 {
			sc.ViewCapBytes = *viewCap
		}
		execs, err := parseExecutors(*executor, "both")
		if err != nil {
			return err
		}
		return runScenario(sc, execs, *format, *outPath, logger, simOpts, udpOpts, liveOpts)
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do (use -list, -run, -file, -show or -compare)")
	}
}

// parseExecutors expands an -executor value into an ordered, deduplicated
// executor list. "both" is sim+live, "all" is sim+live+udp.
func parseExecutors(value, def string) ([]string, error) {
	if value == "" {
		value = def
	}
	switch value {
	case "both":
		value = "sim,live"
	case "all":
		value = "sim,live,udp"
	}
	var execs []string
	seen := make(map[string]bool)
	for _, raw := range strings.Split(value, ",") {
		e := strings.TrimSpace(raw)
		if e == "" || seen[e] {
			continue
		}
		switch e {
		case "sim", "live", "udp":
		default:
			return nil, fmt.Errorf("unknown executor %q (want sim, live, udp, both or all)", e)
		}
		seen[e] = true
		execs = append(execs, e)
	}
	if len(execs) == 0 {
		return nil, fmt.Errorf("no executor selected")
	}
	return execs, nil
}

func listScenarios() error {
	fmt.Println("canned scenarios:")
	for _, sc := range antientropy.CannedScenarios() {
		fmt.Printf("  %-18s n=%-5d cycles=%-4d %s\n", sc.Name, sc.N, sc.Cycles, sc.Description)
	}
	return nil
}

func showScenario(name string) error {
	sc, err := antientropy.ScenarioByName(name)
	if err != nil {
		return err
	}
	data, err := sc.JSON()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "aggscen: scenario %s, schema version %d (current: %d)\n",
		sc.Name, sc.Version, antientropy.ScenarioSchemaVersion)
	fmt.Println(string(data))
	return nil
}

func loadScenario(name, file string) (antientropy.Scenario, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return antientropy.Scenario{}, err
		}
		defer f.Close()
		return antientropy.LoadScenario(f)
	}
	return antientropy.ScenarioByName(name)
}

// runExecutor dispatches one scenario run to the named executor.
func runExecutor(sc antientropy.Scenario, executor string, simOpts antientropy.ScenarioSimOptions, udpOpts antientropy.ScenarioUDPOptions, liveOpts antientropy.ScenarioLiveOptions) (*antientropy.ScenarioRun, error) {
	switch executor {
	case "sim":
		return antientropy.RunScenarioSimWith(sc, simOpts)
	case "live":
		return antientropy.RunScenarioLive(context.Background(), sc, liveOpts)
	case "udp":
		return antientropy.RunScenarioUDP(context.Background(), sc, udpOpts)
	default:
		return nil, fmt.Errorf("unknown executor %q", executor)
	}
}

func runScenario(sc antientropy.Scenario, executors []string, format, outPath string, logger *slog.Logger, simOpts antientropy.ScenarioSimOptions, udpOpts antientropy.ScenarioUDPOptions, liveOpts antientropy.ScenarioLiveOptions) error {
	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "aggscen: closing output:", err)
			}
		}()
		out = f
	}

	var runs []*antientropy.ScenarioRun
	for _, executor := range executors {
		start := time.Now()
		var res *antientropy.ScenarioRun
		// Attacked scenarios run against their honest twin on the
		// simulator, so the induced estimate bias is reported alongside
		// the usual summary (the twin shares the seed and defense).
		if executor == "sim" && sc.HasAdversary() {
			twin, err := antientropy.RunScenarioSimWithTwin(sc, simOpts)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "aggscen: %s\n", twin.Bias)
			res = twin.Attacked
		} else {
			var err error
			res, err = runExecutor(sc, executor, simOpts, udpOpts, liveOpts)
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "aggscen: %s (%v)\n", res.String(), time.Since(start).Round(time.Millisecond))
		runs = append(runs, res)
	}
	// With several executors, report how far each fleet drifts from the
	// first-listed one (normally the simulator's prediction).
	for i := 1; i < len(runs); i++ {
		logger.Info("executor divergence", "divergence", antientropy.DivergeScenarioRuns(runs[0], runs[i]).String())
	}

	switch format {
	case "csv":
		if _, err := fmt.Fprintln(out, antientropy.ScenarioCSVHeader); err != nil {
			return err
		}
		for _, r := range runs {
			if err := r.WriteCSVRows(out); err != nil {
				return err
			}
		}
	case "json":
		for _, r := range runs {
			if err := r.WriteJSON(out); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", format)
	}
	return nil
}

// compareScenarios summarizes each scenario on the simulator executor;
// additional executors (live, udp) run side by side, and the per-cycle
// divergence of each fleet's metric stream from the simulator's is
// reported (they share the CSV schema and the scripted value signal, so
// the difference isolates executor effects).
func compareScenarios(names []string, n, cycles, viewCap int, seed uint64, executors []string, simOpts antientropy.ScenarioSimOptions, udpOpts antientropy.ScenarioUDPOptions, liveOpts antientropy.ScenarioLiveOptions) error {
	// The simulator is the comparison baseline and always runs first.
	fleets := make([]string, 0, len(executors))
	for _, e := range executors {
		if e != "sim" {
			fleets = append(fleets, e)
		}
	}
	fmt.Printf("%-18s %-12s %6s %7s %9s %9s %12s %10s\n",
		"scenario", "executor", "n", "cycles", "min-alive", "end-alive", "final-relerr", "messages")
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		sc, err := antientropy.ScenarioByName(name)
		if err != nil {
			return err
		}
		if n > 0 {
			sc.N = n
		}
		if cycles > 0 {
			sc.Cycles = cycles
		}
		if seed != 0 {
			sc.Seed = seed
		}
		if viewCap > 0 {
			sc.ViewCapBytes = viewCap
		}
		simRes, err := antientropy.RunScenarioSimWith(sc, simOpts)
		if err != nil {
			return err
		}
		printCompareRow(sc, simRes)
		for _, executor := range fleets {
			res, err := runExecutor(sc, executor, simOpts, udpOpts, liveOpts)
			if err != nil {
				return err
			}
			printCompareRow(sc, res)
			fmt.Printf("  divergence: %s\n", antientropy.DivergeScenarioRuns(simRes, res))
		}
	}
	return nil
}

func printCompareRow(sc antientropy.Scenario, res *antientropy.ScenarioRun) {
	f := res.Final()
	fmt.Printf("%-18s %-12s %6d %7d %9d %9d %12.2e %10d\n",
		sc.Name, res.Executor, sc.N, sc.Cycles, res.MinAlive(), f.Alive, f.RelError, res.TotalMessages())
}

// newLogger builds the stderr structured logger every subsystem shares:
// executor progress, health-alert transitions and node debug events all
// flow through it, replacing the ad-hoc stderr prints.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}
