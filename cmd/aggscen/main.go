// Command aggscen lists, runs and compares declarative scenarios:
// scripted churn waves, correlated crashes, flash crowds, network
// partitions, loss/delay bursts and value dynamics, executed against
// both the deterministic cycle-driven simulator and a fleet of live
// agent nodes over the in-memory transport.
//
// The simulator executor runs on one of two engines: the serial engine
// (bit-deterministic from the seed alone) or the sharded multi-core
// engine (deterministic per seed + shard count, built for 10⁵–10⁶-node
// runs). The default -engine auto picks the sharded engine for
// scenarios of 20k node slots and up; an explicit -engine serial or
// -engine sharded always wins, and the executed engine is echoed in the
// per-run summary ("sim" vs "sim-sharded").
//
// Usage:
//
//	aggscen -list
//	aggscen -run partition-heal -n 1000            # both executors, CSV
//	aggscen -run loss-burst -executor sim -format json
//	aggscen -run partition-heal -n 100000 -executor sim -engine sharded -shards 8
//	aggscen -file my-scenario.json -out metrics.csv
//	aggscen -compare steady-churn,loss-burst,partition-heal
//	aggscen -compare partition-heal -executor both  # sim vs live divergence
//	aggscen -show partition-heal                   # print the JSON script
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"antientropy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggscen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list the canned scenarios and exit")
		name     = flag.String("run", "", "run a canned scenario by name")
		file     = flag.String("file", "", "run a scenario from a JSON file")
		show     = flag.String("show", "", "print a canned scenario as JSON and exit")
		compare  = flag.String("compare", "", "comma-separated scenario names to run and summarize (add -executor both for sim-vs-live divergence)")
		n        = flag.Int("n", 0, "override the network size")
		cycles   = flag.Int("cycles", 0, "override the run length")
		seed     = flag.Uint64("seed", 0, "override the scenario seed")
		executor = flag.String("executor", "", "which executor to use: sim, live, or both (default: both for -run, sim for -compare)")
		engine   = flag.String("engine", "auto", "sim executor engine: auto (by size), serial, or sharded")
		shards   = flag.Int("shards", 0, "shard count for -engine sharded (0 = GOMAXPROCS); results are deterministic per seed + shard count")
		format   = flag.String("format", "csv", "metric output format: csv or json")
		outPath  = flag.String("out", "", "write metrics to this file instead of stdout")
		cycleLen = flag.Duration("cycle-len", 0, "live executor: wall-clock cycle length (0 = scale with fleet size and cores)")
	)
	flag.Parse()

	simOpts := antientropy.ScenarioSimOptions{Engine: *engine, Shards: *shards}
	switch {
	case *list:
		return listScenarios()
	case *show != "":
		return showScenario(*show)
	case *compare != "":
		exec := *executor
		if exec == "" {
			exec = "sim"
		}
		return compareScenarios(strings.Split(*compare, ","), *n, *seed, exec, simOpts, *cycleLen)
	case *name != "" || *file != "":
		sc, err := loadScenario(*name, *file)
		if err != nil {
			return err
		}
		if *n > 0 {
			sc.N = *n
		}
		if *cycles > 0 {
			sc.Cycles = *cycles
		}
		if *seed != 0 {
			sc.Seed = *seed
		}
		exec := *executor
		if exec == "" {
			exec = "both"
		}
		return runScenario(sc, exec, *format, *outPath, simOpts, *cycleLen)
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do (use -list, -run, -file, -show or -compare)")
	}
}

func listScenarios() error {
	fmt.Println("canned scenarios:")
	for _, sc := range antientropy.CannedScenarios() {
		fmt.Printf("  %-18s n=%-5d cycles=%-4d %s\n", sc.Name, sc.N, sc.Cycles, sc.Description)
	}
	return nil
}

func showScenario(name string) error {
	sc, err := antientropy.ScenarioByName(name)
	if err != nil {
		return err
	}
	data, err := sc.JSON()
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func loadScenario(name, file string) (antientropy.Scenario, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return antientropy.Scenario{}, err
		}
		defer f.Close()
		return antientropy.LoadScenario(f)
	}
	return antientropy.ScenarioByName(name)
}

func runScenario(sc antientropy.Scenario, executor, format, outPath string, simOpts antientropy.ScenarioSimOptions, cycleLen time.Duration) error {
	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "aggscen: closing output:", err)
			}
		}()
		out = f
	}

	var runs []*antientropy.ScenarioRun
	if executor == "sim" || executor == "both" {
		start := time.Now()
		res, err := antientropy.RunScenarioSimWith(sc, simOpts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "aggscen: %s (%v)\n", res.String(), time.Since(start).Round(time.Millisecond))
		runs = append(runs, res)
	}
	if executor == "live" || executor == "both" {
		start := time.Now()
		res, err := antientropy.RunScenarioLive(context.Background(), sc,
			antientropy.ScenarioLiveOptions{CycleLen: cycleLen})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "aggscen: %s (%v)\n", res.String(), time.Since(start).Round(time.Millisecond))
		runs = append(runs, res)
	}
	if len(runs) == 0 {
		return fmt.Errorf("unknown executor %q (want sim, live or both)", executor)
	}
	if len(runs) == 2 {
		fmt.Fprintf(os.Stderr, "aggscen: divergence %s\n", antientropy.DivergeScenarioRuns(runs[0], runs[1]))
	}

	switch format {
	case "csv":
		if _, err := fmt.Fprintln(out, antientropy.ScenarioCSVHeader); err != nil {
			return err
		}
		for _, r := range runs {
			if err := r.WriteCSVRows(out); err != nil {
				return err
			}
		}
	case "json":
		for _, r := range runs {
			if err := r.WriteJSON(out); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", format)
	}
	return nil
}

// compareScenarios summarizes each scenario on the simulator executor;
// with executor "both" it additionally runs the live fleet side by side
// and reports the per-cycle divergence of the two metric streams (they
// share the CSV schema and the scripted value signal, so the difference
// isolates executor effects).
func compareScenarios(names []string, n int, seed uint64, executor string, simOpts antientropy.ScenarioSimOptions, cycleLen time.Duration) error {
	if executor != "sim" && executor != "both" {
		return fmt.Errorf("-compare supports -executor sim or both, got %q", executor)
	}
	fmt.Printf("%-18s %-12s %6s %7s %9s %9s %12s %10s\n",
		"scenario", "executor", "n", "cycles", "min-alive", "end-alive", "final-relerr", "messages")
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		sc, err := antientropy.ScenarioByName(name)
		if err != nil {
			return err
		}
		if n > 0 {
			sc.N = n
		}
		if seed != 0 {
			sc.Seed = seed
		}
		simRes, err := antientropy.RunScenarioSimWith(sc, simOpts)
		if err != nil {
			return err
		}
		printCompareRow(sc, simRes)
		if executor != "both" {
			continue
		}
		liveRes, err := antientropy.RunScenarioLive(context.Background(), sc,
			antientropy.ScenarioLiveOptions{CycleLen: cycleLen})
		if err != nil {
			return err
		}
		printCompareRow(sc, liveRes)
		fmt.Printf("  divergence: %s\n", antientropy.DivergeScenarioRuns(simRes, liveRes))
	}
	return nil
}

func printCompareRow(sc antientropy.Scenario, res *antientropy.ScenarioRun) {
	f := res.Final()
	fmt.Printf("%-18s %-12s %6d %7d %9d %9d %12.2e %10d\n",
		sc.Name, res.Executor, sc.N, sc.Cycles, res.MinAlive(), f.Alive, f.RelError, res.TotalMessages())
}
