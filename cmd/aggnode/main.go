// Command aggnode runs one live aggregation node over UDP: the paper's
// practical protocol (§4) on a real network.
//
// Start a first node (founding member):
//
//	aggnode -listen 127.0.0.1:7000 -value 10
//
// Add more founding members (they all know each other up front):
//
//	aggnode -listen 127.0.0.1:7001 -value 20 -bootstrap 127.0.0.1:7000
//
// Join a running deployment later (waits for the next epoch, §4.2):
//
//	aggnode -listen 127.0.0.1:7002 -value 30 -join 127.0.0.1:7000
//
// Estimate the network size instead of averaging:
//
//	aggnode -listen 127.0.0.1:7003 -mode count -join 127.0.0.1:7000
//
// All nodes of one deployment must share -delta, -cycle, -gamma and
// -anchor (the epoch schedule); the default anchor is the Unix epoch so
// machines with synchronized clocks agree without coordination.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"antientropy"
	"antientropy/internal/cliutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		value     = flag.Float64("value", 1, "this node's local value (scalar modes)")
		stdinVals = flag.Bool("stdin", false, "read value updates (one float per line) from stdin; each epoch restart picks up the latest")
		function  = flag.String("function", "average", "aggregate: average, min, max, geometric-mean")
		mode      = flag.String("mode", "scalar", "scalar or count (network-size estimation)")
		bootstrap = flag.String("bootstrap", "", "comma-separated founding-member addresses")
		join      = flag.String("join", "", "comma-separated seed addresses of a running deployment")
		delta     = flag.Duration("delta", 30*time.Second, "epoch length Δ")
		cycle     = flag.Duration("cycle", time.Second, "cycle length δ")
		gamma     = flag.Int("gamma", 30, "cycles per epoch γ")
		anchor    = flag.Int64("anchor", 0, "epoch schedule anchor (unix seconds)")
		cache     = flag.Int("cache", 30, "NEWSCAST cache size c")
		viewCap   = flag.Int("view-cap", 0, "cap the piggybacked membership view per exchange datagram, in bytes (0 = unlimited)")
		conc      = flag.Float64("concurrency", 8, "COUNT: desired concurrent instances C")
	)
	tf := cliutil.RegisterTelemetry(flag.CommandLine, 256)
	flag.Parse()

	tel, err := tf.Build(false)
	if err != nil {
		return err
	}
	logger := tel.Logger

	endpoint, err := antientropy.ListenUDP(*listen, 0)
	if err != nil {
		return err
	}
	reg, trace, timeline := tel.Registry, tel.Trace, tel.Timeline
	cfg := antientropy.NodeConfig{
		Endpoint: endpoint,
		Schedule: antientropy.Schedule{
			Start:    time.Unix(*anchor, 0),
			Delta:    *delta,
			CycleLen: *cycle,
			Gamma:    *gamma,
		},
		CacheSize:    *cache,
		Concurrency:  *conc,
		MaxViewBytes: *viewCap,
		Trace:        trace,
		Logger:       logger,
	}
	if reg != nil {
		cfg.RTT = reg.Histogram("agg_exchange_rtt_seconds",
			"Exchange round-trip latency, initiate to reply, in seconds.",
			antientropy.RTTBuckets)
	}
	switch *mode {
	case "scalar":
		fn, err := antientropy.FunctionByName(*function)
		if err != nil {
			return err
		}
		cfg.Mode = antientropy.ModeScalar
		cfg.Function = fn
		initial := *value
		cfg.Value = func() float64 { return initial }
	case "count":
		cfg.Mode = antientropy.ModeCount
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if *bootstrap != "" {
		cfg.Bootstrap = antientropy.ParseAddrList(*bootstrap)
	}
	if *join != "" {
		cfg.Seeds = antientropy.ParseAddrList(*join)
	}

	node, err := antientropy.NewNode(cfg)
	if err != nil {
		return err
	}
	if *stdinVals && cfg.Mode == antientropy.ModeScalar {
		go readValues(os.Stdin, node.SetValue, logger)
	}
	if reg != nil {
		antientropy.RegisterNodeMetrics(reg, node.Metrics)
		reg.CounterFunc("agg_transport_queue_drops_total",
			"Datagrams dropped at the full endpoint inbound queue.",
			endpoint.QueueDrops)
		reg.CounterFunc("agg_transport_filter_drops_total",
			"Datagrams dropped by the endpoint's drop-rule filter.",
			endpoint.FilterDrops)
		reg.GaugeFunc("agg_transport_queue_depth",
			"High watermark of the endpoint's inbound queue depth.",
			func() float64 { return float64(endpoint.QueueDepthHighWatermark()) })
		srv, err := tel.Serve()
		if err != nil {
			return err
		}
		defer srv.Close()
		logger.Info("telemetry serving", "url", fmt.Sprintf("http://%s/metrics", srv.Addr()))
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := node.Start(ctx); err != nil {
		return err
	}
	// Context-based drain: the signal cancels ctx, the status loop
	// returns, and the deferred stop ends both protocol goroutines and
	// closes the endpoint before the deferred telemetry close runs.
	defer func() {
		logger.Info("draining", "addr", node.Addr())
		if err := node.Stop(); err != nil {
			logger.Error("node stop", "err", err)
		}
		logger.Info("drained")
	}()
	fmt.Printf("node %s up: mode=%s function=%s epoch=%d\n",
		node.Addr(), *mode, *function, node.Epoch())

	// The status loop doubles as this node's flight recorder and health
	// monitor: every tick lands one timeline snapshot, and the health
	// rules watch the local protocol counters for loss spikes and
	// partition-shaped timeout skew (the convergence rules need
	// fleet-wide spread and stay quiet on a single node).
	health := antientropy.NewHealth(reg, antientropy.HealthConfig{Logger: logger})
	ticker := time.NewTicker(*cycle * 5)
	defer ticker.Stop()
	var lastReported uint64
	tick := 0
	for {
		select {
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			return nil
		case <-ticker.C:
			tick++
			est, ok := node.Estimate()
			status := "converging"
			participating := 1
			if !ok {
				status = "waiting for epoch"
				participating = 0
			}
			fmt.Printf("[epoch %d] estimate %12.4f (%s, %d peers)\n",
				node.Epoch(), est, status, node.PeerCount())
			if out, ok := node.LastOutput(); ok && out.Epoch != lastReported {
				lastReported = out.Epoch
				fmt.Printf("== epoch %d output: %.6f (ok=%v)\n", out.Epoch, out.Value, out.OK)
			}
			m := node.Metrics()
			alerts := health.Eval(antientropy.HealthSample{
				Cycle:         tick,
				Epoch:         node.Epoch(),
				Alive:         node.PeerCount() + 1,
				Participating: participating,
				MeanEstimate:  est,
				Initiated:     m.ExchangesInitiated,
				Completed:     m.ExchangesCompleted,
				Timeouts:      m.Timeouts,
				Declined:      m.PeerDeclined,
				Drops:         endpoint.QueueDrops() + endpoint.FilterDrops(),
			})
			timeline.Record(antientropy.TimelineEntry{
				Cycle:         tick,
				Epoch:         node.Epoch(),
				Alive:         node.PeerCount() + 1,
				Participating: participating,
				MeanEstimate:  est,
				Drops:         endpoint.QueueDrops() + endpoint.FilterDrops(),
				Alerts:        alerts,
			})
		}
	}
}

// readValues feeds stdin lines into the node's live value via set
// (Node.SetValue): each epoch restart samples the latest (§4.1
// adaptivity in a live deployment).
func readValues(r io.Reader, set func(float64), logger *slog.Logger) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			logger.Warn("ignoring stdin value", "line", line, "err", err)
			continue
		}
		set(v)
		fmt.Printf(">> local value set to %g (takes effect next epoch)\n", v)
	}
}
