package main

import (
	"log/slog"
	"strings"
	"testing"

	"antientropy"
)

func TestParseAddrList(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"a:1", []string{"a:1"}},
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , b:2 ", []string{"a:1", "b:2"}},
		{"a:1,,b:2,", []string{"a:1", "b:2"}},
		{"", nil},
		{" , ", nil},
	}
	for _, tc := range tests {
		got := antientropy.ParseAddrList(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("ParseAddrList(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseAddrList(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestAtomicFloat(t *testing.T) {
	var f atomicFloat
	if f.load() != 0 {
		t.Fatalf("zero value = %g", f.load())
	}
	f.store(3.25)
	if f.load() != 3.25 {
		t.Fatalf("load = %g", f.load())
	}
	f.store(-1e300)
	if f.load() != -1e300 {
		t.Fatalf("load = %g", f.load())
	}
}

func TestReadValues(t *testing.T) {
	var f atomicFloat
	input := "10.5\n\nnot-a-number\n  42 \n"
	readValues(strings.NewReader(input), &f, slog.New(slog.DiscardHandler))
	if f.load() != 42 {
		t.Fatalf("final value = %g, want 42 (last valid line)", f.load())
	}
}
