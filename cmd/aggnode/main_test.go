package main

import (
	"log/slog"
	"strings"
	"testing"

	"antientropy"
)

func TestParseAddrList(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"a:1", []string{"a:1"}},
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , b:2 ", []string{"a:1", "b:2"}},
		{"a:1,,b:2,", []string{"a:1", "b:2"}},
		{"", nil},
		{" , ", nil},
	}
	for _, tc := range tests {
		got := antientropy.ParseAddrList(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("ParseAddrList(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseAddrList(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestReadValues(t *testing.T) {
	var got []float64
	input := "10.5\n\nnot-a-number\n  42 \n"
	readValues(strings.NewReader(input), func(v float64) { got = append(got, v) }, slog.New(slog.DiscardHandler))
	if len(got) != 2 || got[0] != 10.5 || got[1] != 42 {
		t.Fatalf("applied values = %v, want [10.5 42] (blank and invalid lines skipped)", got)
	}
}
