// Command aggsim regenerates the evaluation figures of the DSN'04 paper
// "Robust Aggregation Protocols for Large-Scale Overlay Networks" with
// the cycle-driven simulator.
//
// Usage:
//
//	aggsim -list
//	aggsim -exp fig2                  # paper-scale (10^5 nodes, 50 reps)
//	aggsim -exp fig7b -n 10000 -reps 10
//	aggsim -exp all -n 10000 -reps 5 -csv out.csv
//	aggsim -exp all -engine sharded -shards 8   # whole evaluation, sharded
//
// Without -n/-reps each experiment runs at the paper's full scale, which
// can take a long time for the 10^5–10^6-node sweeps; pass -n to scale
// down (the paper itself shows the behaviour is size-independent).
//
// Every experiment honors -engine: the default "auto" picks the sharded
// multi-core engine for sweeps of 20k nodes and up and the serial engine
// below, an explicit "serial"/"sharded" always wins, and the engine each
// figure ran on is echoed with its result.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"antientropy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		expID    = flag.String("exp", "", "experiment id (see -list), or \"all\"")
		n        = flag.Int("n", 0, "override network size (0 = paper scale)")
		reps     = flag.Int("reps", 0, "override repetition count (0 = paper scale)")
		seed     = flag.Uint64("seed", 0, "override master seed (0 = default)")
		engine   = flag.String("engine", "auto", "simulation engine for every experiment: auto (by size), serial, or sharded")
		shards   = flag.Int("shards", 0, "shard count for -engine sharded (0 = GOMAXPROCS); results are deterministic per seed + shard count")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file")
		showPlot = flag.Bool("plot", false, "render an ASCII plot of each figure")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, e := range antientropy.Experiments() {
			fmt.Printf("  %-24s %s\n", e.ID, e.Description)
		}
		if *expID == "" && !*list {
			return fmt.Errorf("no experiment selected (use -exp)")
		}
		return nil
	}

	var ids []string
	if *expID == "all" {
		for _, e := range antientropy.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = []string{*expID}
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *csvPath, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "aggsim: closing csv:", err)
			}
		}()
		csvFile = f
	}

	opts := antientropy.ExperimentOptions{N: *n, Reps: *reps, Seed: *seed, Engine: *engine, Shards: *shards}
	for _, id := range ids {
		start := time.Now()
		res, err := antientropy.RunExperiment(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res.String())
		if *showPlot {
			rendered, err := res.Plot()
			if err != nil {
				fmt.Fprintf(os.Stderr, "aggsim: plotting %s: %v\n", id, err)
			} else {
				fmt.Println(rendered)
			}
		}
		fmt.Printf("(%s completed in %v on the %s engine)\n\n", id, time.Since(start).Round(time.Millisecond), res.Engine)
		if csvFile != nil {
			if err := res.WriteCSV(csvFile); err != nil {
				return fmt.Errorf("writing csv: %w", err)
			}
		}
	}
	return nil
}
