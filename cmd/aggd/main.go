// Command aggd is the aggregation-as-a-service daemon: a long-lived,
// multi-tenant server hosting named aggregation instances — each an
// embedded fleet of live protocol nodes (§4) — behind a versioned HTTP
// JSON API with per-tenant token-bucket admission control.
//
// Start it and create an AVERAGE instance:
//
//	aggd -listen 127.0.0.1:8080
//	curl -X POST localhost:8080/v1/instances \
//	     -d '{"name":"temps","function":"average","fleet_size":16,"epoch_ms":1000}'
//
// Feed values and poll the converged estimate:
//
//	curl -X POST localhost:8080/v1/instances/temps/values -d '{"values":[20.5,21.0,19.5]}'
//	curl localhost:8080/v1/instances/temps/estimate
//
// The API listener also serves /metrics (including the agg_serve_*
// series), /debug/trace, /debug/timeline and /debug/pprof. Tenants are
// declared with repeated -tenant flags; without any, every request is
// admitted as the tenant "default" limited by -rate/-burst.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"antientropy"
	"antientropy/internal/cliutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggd:", err)
		os.Exit(1)
	}
}

// tenantFlags collects repeated -tenant values of the form
// "name:key:rate:burst" (rate in requests/second; rate 0 = unlimited;
// an empty key makes the tenant the open one keyless clients get).
type tenantFlags []antientropy.ServeTenant

func (t *tenantFlags) String() string { return fmt.Sprintf("%d tenants", len(*t)) }

func (t *tenantFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 4 {
		return fmt.Errorf("want name:key or name:key:rate:burst, got %q", s)
	}
	ten := antientropy.ServeTenant{Name: parts[0], Key: parts[1]}
	if len(parts) == 4 {
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return fmt.Errorf("tenant %q: bad rate %q", parts[0], parts[2])
		}
		burst, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return fmt.Errorf("tenant %q: bad burst %q", parts[0], parts[3])
		}
		ten.Limit = antientropy.ServeLimit{Rate: rate, Burst: burst}
	}
	*t = append(*t, ten)
	return nil
}

func run() error {
	var tenants tenantFlags
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "HTTP listen address for the /v1 API and the telemetry surfaces")
		transportSel = flag.String("transport", "mem", "fleet transport: mem (in-memory) or udp (shared batched mux on loopback)")
		rate         = flag.Float64("rate", 0, "default tenant request rate in req/s when no -tenant is configured (0: unlimited)")
		burst        = flag.Float64("burst", 0, "default tenant burst when no -tenant is configured")
		maxInstances = flag.Int("max-instances", 64, "cap on live instances")
		maxFleet     = flag.Int("max-fleet", 256, "cap on nodes per instance fleet")
	)
	flag.Var(&tenants, "tenant", "tenant spec name:key:rate:burst (repeatable; empty key = open tenant)")
	tf := cliutil.RegisterTelemetry(flag.CommandLine, 256)
	flag.Parse()

	tel, err := tf.Build(true)
	if err != nil {
		return err
	}
	logger := tel.Logger

	var tr antientropy.ServeTransport
	switch *transportSel {
	case "mem":
		tr = antientropy.ServeTransportMem
	case "udp":
		tr = antientropy.ServeTransportUDP
	default:
		return fmt.Errorf("unknown transport %q (want mem or udp)", *transportSel)
	}

	if len(tenants) == 0 {
		tenants = tenantFlags{{Name: "default", Limit: antientropy.ServeLimit{Rate: *rate, Burst: *burst}}}
	}
	resolved, err := antientropy.NewServeTenants(tenants)
	if err != nil {
		return err
	}
	limiter := antientropy.NewServeLimiter()
	for _, ten := range resolved.All() {
		limiter.SetLimit(ten.Name, ten.Limit)
	}

	registry := antientropy.NewServeRegistry(antientropy.ServeRegistryConfig{
		Transport: tr,
		Limits:    antientropy.ServeLimits{MaxInstances: *maxInstances, MaxFleet: *maxFleet},
		Logger:    logger,
	})
	api := antientropy.NewServeAPI(antientropy.ServeAPIConfig{
		Registry: registry,
		Tenants:  resolved,
		Limiter:  limiter,
		Metrics:  antientropy.NewServeMetrics(tel.Registry),
		Logger:   logger,
	})

	// One listener, one mux: the /v1 API next to /metrics, /debug/trace,
	// /debug/timeline and /debug/pprof.
	srv, err := tel.ServeWith(*listen, func(mux *http.ServeMux) {
		mux.Handle("/v1/", api)
	})
	if err != nil {
		return err
	}
	logger.Info("aggd serving", "url", fmt.Sprintf("http://%s/v1/instances", srv.Addr()),
		"metrics", fmt.Sprintf("http://%s/metrics", srv.Addr()), "transport", *transportSel)

	// -metrics-addr additionally serves the telemetry surfaces on a
	// second listener, exactly as it does on aggnode — for deployments
	// that keep scrape traffic off the API port.
	extra, err := tel.Serve()
	if err != nil {
		srv.Close()
		return err
	}
	if extra != nil {
		logger.Info("telemetry serving", "url", fmt.Sprintf("http://%s/metrics", extra.Addr()))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	<-ctx.Done()

	// Context-based drain: stop accepting API traffic (in-flight
	// requests get their responses), then tear the fleets down, then
	// release the telemetry listener — never mid-request, never leaking
	// an epoch timer.
	logger.Info("signal received, draining")
	if err := srv.Close(); err != nil {
		logger.Error("api server close", "err", err)
	}
	if extra != nil {
		if err := extra.Close(); err != nil {
			logger.Error("telemetry server close", "err", err)
		}
	}
	registry.Close()
	logger.Info("drained", "instances", 0)
	return nil
}
