// Command agglocal runs a whole live deployment inside one process: N
// asynchronous aggregation nodes (goroutine active/passive pairs) over
// the in-memory network with configurable loss and latency. It is the
// quickest way to watch the practical protocol (§4) work end to end, and
// doubles as a stress tool: it can crash a fraction of the nodes midway
// and show the next epoch absorbing the damage.
//
// Usage:
//
//	agglocal -nodes 64 -loss 0.05 -epochs 6
//	agglocal -nodes 64 -mode count -kill 0.3 -kill-after 2
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"time"

	"antientropy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "agglocal:", err)
		os.Exit(1)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

func run() error {
	var (
		nodes     = flag.Int("nodes", 32, "number of in-process nodes")
		loss      = flag.Float64("loss", 0.02, "network message loss probability")
		latency   = flag.Duration("latency", 2*time.Millisecond, "max network latency")
		cycleLen  = flag.Duration("cycle", 20*time.Millisecond, "cycle length delta")
		gamma     = flag.Int("gamma", 30, "cycles per epoch")
		epochs    = flag.Int("epochs", 5, "epochs to run before exiting")
		mode      = flag.String("mode", "scalar", "scalar or count")
		function  = flag.String("function", "average", "scalar aggregate")
		killFrac  = flag.Float64("kill", 0, "fraction of nodes to crash midway")
		killAfter = flag.Int("kill-after", 2, "epoch after which the crash happens")
		seed      = flag.Uint64("seed", 1, "randomness seed")
	)
	flag.Parse()
	if *nodes < 2 {
		return fmt.Errorf("need at least 2 nodes, got %d", *nodes)
	}
	if *killFrac < 0 || *killFrac >= 1 {
		return fmt.Errorf("kill fraction %g out of [0, 1)", *killFrac)
	}

	net := antientropy.NewMemNetwork(antientropy.MemNetworkConfig{
		MaxLatency: *latency,
		Loss:       *loss,
		Seed:       int64(*seed),
	})
	defer net.Close()
	schedule := antientropy.Schedule{
		Start:    time.Now().Truncate(time.Second),
		Delta:    time.Duration(*gamma) * *cycleLen,
		CycleLen: *cycleLen,
		Gamma:    *gamma,
	}
	quiet := slog.New(slog.NewTextHandler(nopWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))

	endpoints, addrs := antientropy.NewMemFleet(net, *nodes)
	cluster := make([]*antientropy.Node, *nodes)
	rng := antientropy.NewRNG(*seed)
	trueSum := 0.0
	ctx := context.Background()
	for i := range cluster {
		cfg := antientropy.NodeConfig{
			Endpoint:  endpoints[i],
			Schedule:  schedule,
			Bootstrap: addrs,
			Seed:      *seed + uint64(i) + 1,
			Logger:    quiet,
		}
		switch *mode {
		case "scalar":
			fn, err := antientropy.FunctionByName(*function)
			if err != nil {
				return err
			}
			cfg.Function = fn
			v := math.Floor(100 * rng.Float64())
			trueSum += v
			cfg.Value = func() float64 { return v }
		case "count":
			cfg.Mode = antientropy.ModeCount
			cfg.Concurrency = 8
			cfg.InitialSizeGuess = float64(*nodes)
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
		node, err := antientropy.NewNode(cfg)
		if err != nil {
			return err
		}
		cluster[i] = node
		if err := node.Start(ctx); err != nil {
			return err
		}
	}
	alive := cluster
	defer func() {
		for _, node := range alive {
			_ = node.Stop()
		}
	}()

	if *mode == "scalar" {
		fmt.Printf("%d nodes, %s over in-memory net (loss %.0f%%, latency ≤ %v); true average %.3f\n\n",
			*nodes, *function, *loss*100, *latency, trueSum/float64(*nodes))
	} else {
		fmt.Printf("%d nodes, COUNT over in-memory net (loss %.0f%%, latency ≤ %v)\n\n",
			*nodes, *loss*100, *latency)
	}

	epochLen := schedule.Delta
	for epoch := 1; epoch <= *epochs; epoch++ {
		time.Sleep(epochLen)
		if *killFrac > 0 && epoch == *killAfter {
			victims := int(*killFrac * float64(len(alive)))
			for k := 0; k < victims; k++ {
				idx := rng.Intn(len(alive))
				_ = alive[idx].Stop()
				alive = append(alive[:idx], alive[idx+1:]...)
			}
			fmt.Printf(">> crashed %d nodes (%d survive)\n", victims, len(alive))
		}
		var m antientropy.Moments
		for _, node := range alive {
			if out, ok := node.LastOutput(); ok && out.OK {
				m.Add(out.Value)
			}
		}
		if m.N() == 0 {
			fmt.Printf("epoch %d: no outputs yet\n", epoch)
			continue
		}
		fmt.Printf("epoch %d: outputs from %3d nodes — mean %10.3f  spread [%.3f, %.3f]\n",
			epoch, m.N(), m.Mean(), m.Min(), m.Max())
	}

	var agg antientropy.NodeMetrics
	for _, node := range alive {
		nm := node.Metrics()
		agg.ExchangesInitiated += nm.ExchangesInitiated
		agg.ExchangesCompleted += nm.ExchangesCompleted
		agg.ExchangesServed += nm.ExchangesServed
		agg.Timeouts += nm.Timeouts
		agg.RefusedBusy += nm.RefusedBusy
		agg.PeerDeclined += nm.PeerDeclined
		agg.EpochJumps += nm.EpochJumps
	}
	fmt.Printf("\ncluster totals: %+v\n", agg)
	return nil
}
