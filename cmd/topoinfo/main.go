// Command topoinfo generates one of the paper's overlay topologies and
// prints its structural metrics (degree distribution, connectivity,
// clustering coefficient, average path length) — useful for validating
// that a topology matches the paper's assumptions before simulating on
// it.
//
// Usage:
//
//	topoinfo -type random -n 10000 -k 20
//	topoinfo -type watts-strogatz -n 10000 -k 20 -beta 0.25
//	topoinfo -type scale-free -n 10000 -m 10
//	topoinfo -type lattice -n 10000 -k 20
package main

import (
	"flag"
	"fmt"
	"os"

	"antientropy/internal/stats"
	"antientropy/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topoinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		typ     = flag.String("type", "random", "random | regular | lattice | watts-strogatz | scale-free")
		n       = flag.Int("n", 10000, "node count")
		k       = flag.Int("k", 20, "degree (random, lattice, watts-strogatz)")
		m       = flag.Int("m", 10, "attachment count (scale-free)")
		beta    = flag.Float64("beta", 0.25, "rewiring probability (watts-strogatz)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		samples = flag.Int("samples", 200, "nodes sampled for clustering/path metrics")
	)
	flag.Parse()

	rng := stats.NewRNG(*seed)
	var (
		g   *topology.Adjacency
		err error
	)
	switch *typ {
	case "random":
		g, err = topology.NewRandomKOut(*n, *k, rng)
	case "regular":
		g, err = topology.NewKRegular(*n, *k, rng)
	case "lattice":
		g, err = topology.NewRingLattice(*n, *k)
	case "watts-strogatz":
		g, err = topology.NewWattsStrogatz(*n, *k, *beta, rng)
	case "scale-free":
		g, err = topology.NewBarabasiAlbert(*n, *m, rng)
	default:
		return fmt.Errorf("unknown topology type %q", *typ)
	}
	if err != nil {
		return err
	}

	ds := topology.Degrees(g)
	fmt.Printf("topology:    %s (n=%d)\n", *typ, g.N())
	fmt.Printf("edges:       %d directed entries\n", g.Edges())
	fmt.Printf("degree:      min=%d mean=%.2f max=%d\n", ds.Min, ds.Mean, ds.Max)
	fmt.Printf("connected:   %v\n", topology.IsConnected(g))
	cc := topology.ClusteringCoefficient(g, *samples, stats.NewRNG(*seed+1))
	fmt.Printf("clustering:  %.4f (sampled)\n", cc)
	apl, err := topology.AveragePathLength(g, min(*samples/10+1, 20), stats.NewRNG(*seed+2))
	if err != nil {
		fmt.Printf("path length: n/a (%v)\n", err)
	} else {
		fmt.Printf("path length: %.2f (sampled)\n", apl)
	}
	// Top of the degree histogram, to eyeball power-law tails.
	hist := topology.DegreeHistogram(g)
	maxDeg := 0
	for d := range hist {
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("max degree:  %d (%d nodes)\n", maxDeg, hist[maxDeg])
	return nil
}
